//! E5 — Tag objects vs full objects: the ">10 times faster" claim.
//!
//! Runs the same queries through the engine twice — once allowed to route
//! to the 64-byte tag partition, once forced to the ~1.2 KB full store —
//! and reports bytes read and wall time.

use sdss_bench::{build_stores, fmt_bytes, standard_sky};
use sdss_catalog::{PhotoObj, TagObject};
use sdss_query::Archive;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    println!("E5: tag (vertical partition) vs full-object search ({n} objects)\n");
    let objs = standard_sky(n, 42);
    let (store, tags) = build_stores(&objs, 7);
    println!(
        "record widths: full {} B, tag {} B (ratio {:.1}x)\n",
        PhotoObj::SERIALIZED_LEN,
        TagObject::SERIALIZED_LEN,
        PhotoObj::SERIALIZED_LEN as f64 / TagObject::SERIALIZED_LEN as f64
    );

    // --- storage layer: the claim as stated (bytes dominate) ----------
    let domain = sdss_htm::Region::circle(185.0, 15.0, 4.5).unwrap();
    let mut full_ms = f64::INFINITY;
    let mut tag_ms = f64::INFINITY;
    let mut rows_full = 0usize;
    let mut rows_tag = 0usize;
    for _ in 0..3 {
        let t = Instant::now();
        rows_full = store.query_region(&domain, None).unwrap().0.len();
        full_ms = full_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        rows_tag = tags.query_region(&domain, None).unwrap().0.len();
        tag_ms = tag_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(rows_full, rows_tag);
    println!(
        "storage-layer region search (4.5 deg cone, {} rows):\n  full objects {:8.2} ms   tags {:8.2} ms   speedup {:.1}x  <- the paper's '>10x'\n",
        rows_full,
        full_ms,
        tag_ms,
        full_ms / tag_ms
    );

    println!("engine-level queries (adds parse/plan/row-materialization overhead,");
    println!("which dilutes the raw byte ratio):\n");
    let queries = [
        ("color cut", "SELECT objid, ra, dec FROM photoobj WHERE CIRCLE(185, 15, 4.5) AND g - r > 0.4 AND r < 21"),
        ("bright galaxies", "SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 4.5) AND class = 'GALAXY' AND r < 19"),
        ("count all", "SELECT COUNT(*) FROM photoobj WHERE CIRCLE(185, 15, 4.5) AND ug < 0.5"),
    ];

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9}",
        "query", "rows", "tag (ms)", "full (ms)", "speedup"
    );
    println!("{}", "-".repeat(64));
    let store = Arc::new(store);
    let tags = Arc::new(tags);
    let with_tags = Archive::new(store.clone(), Some(tags.clone()));
    let full_only = Archive::new(store.clone(), None);
    for (name, sql) in queries {
        // Warm both paths once, then measure best-of-3.
        let rows = with_tags.run(sql).unwrap().rows.len();
        let mut tag_ms = f64::INFINITY;
        let mut full_ms = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let out = with_tags.run(sql).unwrap();
            assert_eq!(out.stats.route, sdss_query::RouteChoice::TagOnly);
            tag_ms = tag_ms.min(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let out = full_only.run(sql).unwrap();
            assert_eq!(out.rows.len(), rows, "routes must agree");
            full_ms = full_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "{:<16} {:>10} {:>12.2} {:>12.2} {:>8.1}x",
            name,
            rows,
            tag_ms,
            full_ms,
            full_ms / tag_ms
        );
    }

    println!(
        "\nstore bytes: full {} vs tag {} ({:.1}x smaller — the paper's 'much less space')",
        fmt_bytes(store.bytes() as f64),
        fmt_bytes(tags.bytes() as f64),
        store.bytes() as f64 / tags.bytes() as f64
    );
}
