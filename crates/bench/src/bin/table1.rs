//! E1 — Reproduce **Table 1**: sizes of the SDSS data products.
//!
//! Prints model-derived rows next to the paper's quoted values.

use sdss_catalog::products::{table1, total_products_bytes, SurveyParams};

fn fmt(bytes: f64) -> String {
    if bytes >= 1e12 {
        format!("{:.1} TB", bytes / 1e12)
    } else {
        format!("{:.0} GB", bytes / 1e9)
    }
}

fn main() {
    let params = SurveyParams::default();
    let rows = table1(&params);
    println!("E1 / Table 1: Sizes of various SDSS datasets");
    println!("(model derived from survey physics vs the paper's quoted sizes)\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>7}  formula",
        "Product", "Items", "Model", "Paper", "ratio"
    );
    println!("{}", "-".repeat(110));
    for r in &rows {
        let items = match r.items {
            Some(v) => format!("{v:.1e}"),
            None => "-".to_string(),
        };
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>6.2}x  {}",
            r.name,
            items,
            fmt(r.bytes),
            fmt(r.paper_bytes),
            r.ratio(),
            r.formula
        );
    }
    println!("{}", "-".repeat(110));
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "Products total (ex. raw)",
        "",
        fmt(total_products_bytes(&rows)),
        "~3 TB"
    );
}
