//! E3 — Reproduce **Figure 4**: a latitude range query in one spherical
//! coordinate system intersected with a latitude constraint in another,
//! classified against the mesh (fully inside / bisected / rejected).

use sdss_htm::{Cover, Region};
use sdss_skycoords::Frame;

fn main() {
    println!("E3 / Figure 4: declination band ∧ galactic latitude constraint\n");
    // "a simple range query of latitude in one spherical coordinate
    // system (the two parallel planes) and an additional latitude
    // constraint in another system".
    let dec_band = Region::band(Frame::Equatorial, 10.0, 25.0).unwrap();
    let gal_cut = Region::band(Frame::Galactic, 40.0, 90.0).unwrap();
    let query = dec_band.intersect(&gal_cut);

    println!("query: 10 <= dec <= 25  AND  40 <= galactic b <= 90\n");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "level", "full", "partial", "rejected", "visited", "full frac"
    );
    println!("{}", "-".repeat(64));
    for level in 3..=8u8 {
        let cover = Cover::compute(&query, level).unwrap();
        let s = cover.stats();
        let total = 8u64 << (2 * level as u64);
        let full_frac = cover.full_ranges().count() as f64 / total as f64;
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10} {:>11.4}%",
            level,
            cover.full_ranges().count(),
            cover.partial_ranges().count(),
            s.rejected,
            s.nodes_visited,
            full_frac * 100.0
        );
    }

    // The paper's point: only bisected trixels need exact tests, and the
    // pruned subtrees are never visited.
    let cover = Cover::compute(&query, 8).unwrap();
    println!(
        "\nat level 8: {} intervals cover the region ({} full + {} partial trixels)",
        cover.full_ranges().num_intervals() + cover.partial_ranges().num_intervals(),
        cover.full_ranges().count(),
        cover.partial_ranges().count(),
    );
    println!(
        "nodes visited: {} of {} level-8 trixels ({:.2}%) — the quad-tree prunes the rest",
        cover.stats().nodes_visited,
        8u64 << 16,
        cover.stats().nodes_visited as f64 / (8u64 << 16) as f64 * 100.0
    );
}
