//! E10 — The river sorting network: throughput vs worker count.
//!
//! Paper (\[Sort\]): "Current systems have demonstrated that they can sort
//! at about 100 MBps using commodity hardware". Shape under test:
//! near-linear scaling of run generation, merge-bound at high counts.

use sdss_bench::standard_sky;
use sdss_catalog::TagObject;
use sdss_dataflow::{parallel_sort_by_key, RiverGraph};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000usize);
    println!("E10: river sorting network ({n} tag records)\n");
    let tags: Vec<TagObject> = standard_sky(n, 48)
        .iter()
        .map(TagObject::from_photo)
        .collect();
    let key = |t: &TagObject| t.mags[2] as f64;

    println!(
        "{:>8} {:>12} {:>10} {:>9}",
        "workers", "wall (ms)", "MB/s", "speedup"
    );
    println!("{}", "-".repeat(44));
    let mut base = None;
    for workers in [1usize, 2, 4, 8, 16] {
        // Best of 3.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (_, report) = parallel_sort_by_key(&tags, key, workers).unwrap();
            best = best.min(report.wall.as_secs_f64());
        }
        let mbps = (tags.len() * TagObject::SERIALIZED_LEN) as f64 / 1e6 / best;
        if base.is_none() {
            base = Some(best);
        }
        println!(
            "{:>8} {:>12.1} {:>10.1} {:>8.2}x",
            workers,
            best * 1e3,
            mbps,
            base.unwrap() / best
        );
    }

    // A full river: filter → map → sorting-network terminal.
    println!("\nfull river (filter bright → extinction-correct → sort by r):");
    let graph = RiverGraph::new(4)
        .unwrap()
        .filter(|t| t.mags[2] < 22.0)
        .map(|mut t| {
            t.mags[2] -= 0.1;
            t
        })
        .sort_by(|t| t.mags[2] as f64);
    let (out, report) = graph.run(&tags).unwrap();
    println!(
        "  {} in → {} out, {:.1} ms, {:.1} MB/s input rate",
        report.records_in,
        report.records_out,
        report.wall.as_secs_f64() * 1e3,
        report.mbps_in()
    );
    assert!(out.windows(2).all(|w| w[0].mags[2] <= w[1].mags[2]));
}
