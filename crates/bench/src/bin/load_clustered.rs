//! E9 — Loading: touch-once clustered loads vs naive arrival-order
//! loads, plus the 20 GB/day feasibility extrapolation.

use sdss_bench::sky_model;
use sdss_loader::{chunk::chunks_from_catalog, load_clustered, load_naive, IngestPipeline};
use sdss_storage::{ObjectStore, StoreConfig};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    println!("E9: two-phase clustered load vs naive arrival-order load ({n} objects)\n");
    let model = sky_model(n, 46);
    let objs = model.generate().unwrap();
    let chunks = chunks_from_catalog(objs, 5).unwrap();

    println!(
        "{:>6} {:>9} {:>16} {:>16} {:>12} {:>12}",
        "night", "objects", "touches (clust)", "touches (naive)", "clust objs/s", "naive objs/s"
    );
    println!("{}", "-".repeat(78));
    let mut clustered_store = ObjectStore::new(StoreConfig::default()).unwrap();
    let mut naive_store = ObjectStore::new(StoreConfig::default()).unwrap();
    let mut total_c = 0u64;
    let mut total_n = 0u64;
    for chunk in &chunks {
        let rc = load_clustered(&mut clustered_store, chunk).unwrap();
        let rn = load_naive(&mut naive_store, chunk).unwrap();
        total_c += rc.container_touches;
        total_n += rn.container_touches;
        println!(
            "{:>6} {:>9} {:>10} ({:>3.1}x) {:>10} ({:>5.0}x) {:>12.0} {:>12.0}",
            chunk.night,
            rc.objects,
            rc.container_touches,
            rc.touches_per_container(),
            rn.container_touches,
            rn.touches_per_container(),
            rc.objects_per_sec(),
            rn.objects_per_sec(),
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "total container touches: clustered {total_c} vs naive {total_n} ({:.0}x reduction)",
        total_n as f64 / total_c as f64
    );

    // Feasibility of the paper's daily volume.
    let pipeline = IngestPipeline::default();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    let report = pipeline.run(&sky_model(n / 2, 47), &mut store, 3).unwrap();
    println!(
        "\nsustained clustered load rate: {:.1} MB/s → a 20 GB day loads in {:.1} min",
        report.sustained_bps() / 1e6,
        report.hours_for_daily_volume(20e9) * 60.0
    );
}
