//! Shared workload builders for the benchmark harness.
//!
//! Every experiment binary and Criterion bench builds its datasets through
//! these helpers so that workloads are identical across harnesses and
//! reruns (fixed seeds).

use sdss_catalog::{GenRegion, PhotoObj, SkyModel};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};

/// Default experiment field: a 5-degree cap at the SDSS test region.
pub const FIELD_RA: f64 = 185.0;
pub const FIELD_DEC: f64 = 15.0;
pub const FIELD_RADIUS: f64 = 5.0;

/// Build the standard clustered sky of `n` total objects (70% galaxies,
/// 25% stars, 5% quasars — roughly the paper's catalog mix).
pub fn standard_sky(n: usize, seed: u64) -> Vec<PhotoObj> {
    let model = sky_model(n, seed);
    model
        .generate()
        .expect("standard model parameters are valid")
}

/// The corresponding model, for callers that need spectro data too.
pub fn sky_model(n: usize, seed: u64) -> SkyModel {
    SkyModel {
        region: GenRegion::Cap {
            ra_deg: FIELD_RA,
            dec_deg: FIELD_DEC,
            radius_deg: FIELD_RADIUS,
        },
        n_galaxies: n * 70 / 100,
        n_stars: n * 25 / 100,
        n_quasars: n - n * 70 / 100 - n * 25 / 100,
        seed,
        ..SkyModel::default()
    }
}

/// Load a sky into a fresh store (and matching tag store).
pub fn build_stores(objs: &[PhotoObj], level: u8) -> (ObjectStore, TagStore) {
    let mut store = ObjectStore::new(StoreConfig {
        container_level: level,
        ..StoreConfig::default()
    })
    .expect("valid store config");
    store.insert_batch(objs).expect("insert generated objects");
    let tags = TagStore::from_store(&store);
    (store, tags)
}

/// Pretty-print a measurement table row.
pub fn row(cols: &[String]) -> String {
    cols.join(" | ")
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}
