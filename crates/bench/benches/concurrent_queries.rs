//! Concurrent query throughput over one shared `Archive` handle — the
//! server-facing measurement the API redesign exists for: N client
//! threads hammering prepared statements against the same stores.
//!
//! Emits `BENCH_concurrent.json` at the workspace root with aggregate
//! queries/second at 1, 4 and 8 client threads (plus the scaling factor
//! vs single-threaded), so CI and later sessions can track whether the
//! shared handle actually scales with clients.

use sdss_bench::{build_stores, standard_sky};
use sdss_query::{Archive, Prepared};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N_OBJECTS: usize = 60_000;
/// Queries each thread executes per timed run.
const QUERIES_PER_THREAD: usize = 24;
const THREAD_COUNTS: &[usize] = &[1, 4, 8];

/// The client mix: cone searches, color cuts and an aggregate — all on
/// the compiled tag path, prepared once and re-run per request.
const QUERIES: &[&str] = &[
    "SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < $1",
    "SELECT objid, gr FROM photoobj WHERE class = 'GALAXY' AND gr BETWEEN $1 AND 1.2",
    "SELECT COUNT(*) FROM photoobj WHERE r BETWEEN 18 AND $1",
];
/// One binding per query (kept fixed so every run does identical work).
const PARAMS: &[f64] = &[21.0, 0.35, 21.5];

fn run_clients(archive: &Archive, threads: usize) -> f64 {
    let prepared: Arc<Vec<Prepared>> = Arc::new(
        QUERIES
            .iter()
            .map(|sql| archive.prepare(sql).expect("query prepares"))
            .collect(),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let prepared = prepared.clone();
            std::thread::spawn(move || {
                for i in 0..QUERIES_PER_THREAD {
                    let q = (t + i) % prepared.len();
                    let out = prepared[q].run_with(&[PARAMS[q]]).expect("query runs");
                    black_box(out.rows.len());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total_queries = (threads * QUERIES_PER_THREAD) as f64;
    total_queries / t0.elapsed().as_secs_f64()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "concurrent query throughput ({N_OBJECTS} objects, {cores} core(s), shared Archive)\n"
    );
    let objs = standard_sky(N_OBJECTS, 2027);
    let (store, tags) = build_stores(&objs, 6);
    let archive = Archive::new(store, Some(Arc::new(tags)));

    // Warm: covers cached, allocator primed, sanity-check the mix.
    for (sql, p) in QUERIES.iter().zip(PARAMS) {
        let out = archive
            .prepare(sql)
            .expect("prepares")
            .run_with(&[*p])
            .expect("runs");
        assert!(out.stats.columnar, "{sql} missed the compiled path");
    }

    let mut entries = Vec::new();
    let mut qps_1 = 0.0f64;
    println!("{:<10} {:>12} {:>10}", "threads", "queries/s", "scaling");
    println!("{}", "-".repeat(34));
    for &threads in THREAD_COUNTS {
        // Best of 3 to shed scheduler noise.
        let qps = (0..3)
            .map(|_| run_clients(&archive, threads))
            .fold(0.0f64, f64::max);
        if threads == 1 {
            qps_1 = qps;
        }
        let scaling = qps / qps_1;
        println!("{threads:<10} {qps:>12.1} {scaling:>9.2}x");
        entries.push(format!(
            "    {{\"threads\": {threads}, \"queries_per_sec\": {qps:.1}, \"scaling_vs_1\": {scaling:.2}}}"
        ));
    }

    // `cores` gates the thread-scaling ratios in bench_check: a 1-core
    // run caps scaling at ~1.0, so cross-machine comparisons of
    // scaling_vs_1 are only meaningful when both runs had parallelism.
    let json = format!(
        "{{\n  \"bench\": \"concurrent_queries\",\n  \"objects\": {N_OBJECTS},\n  \
         \"cores\": {cores},\n  \
         \"queries_per_thread\": {QUERIES_PER_THREAD},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_concurrent.json");
    std::fs::write(&path, json).expect("write BENCH_concurrent.json");
    println!("\nwrote {}", path.display());
}
