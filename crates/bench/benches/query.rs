//! Criterion benches for the query path (E5/E8 timing side): cone
//! queries on tag vs full stores, parse+plan latency.

use criterion::{criterion_group, criterion_main, Criterion};
use sdss_bench::{build_stores, standard_sky};
use sdss_htm::Region;
use sdss_query::Archive;
use std::hint::black_box;
use std::sync::Arc;

fn bench_cone_queries(c: &mut Criterion) {
    let objs = standard_sky(20_000, 61);
    let (store, tags) = build_stores(&objs, 7);
    let domain = Region::circle(185.0, 15.0, 1.0).unwrap();

    let mut group = c.benchmark_group("cone_1deg");
    group.bench_function("store_region_scan", |b| {
        b.iter(|| black_box(store.query_region(&domain, None).unwrap().0.len()));
    });
    group.bench_function("tag_region_scan", |b| {
        b.iter(|| black_box(tags.query_region(&domain, None).unwrap().0.len()));
    });
    group.finish();

    let store = Arc::new(store);
    let archive = Archive::new(store.clone(), Some(Arc::new(tags)));
    let archive_full = Archive::new(store, None);
    let sql = "SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 1) AND r < 21";
    let mut group = c.benchmark_group("engine_cone");
    group.bench_function("tag_route", |b| {
        let prepared = archive.prepare(sql).unwrap();
        b.iter(|| black_box(prepared.run().unwrap().rows.len()));
    });
    group.bench_function("full_route", |b| {
        let prepared = archive_full.prepare(sql).unwrap();
        b.iter(|| black_box(prepared.run().unwrap().rows.len()));
    });
    group.finish();
}

fn bench_parse_plan(c: &mut Criterion) {
    let objs = standard_sky(500, 62);
    let (store, tags) = build_stores(&objs, 7);
    let archive = Archive::new(store, Some(Arc::new(tags)));
    let sql = "SELECT objid, ra, dec, g - r AS color FROM photoobj \
               WHERE CIRCLE(185, 15, 2) AND r < 22 AND class = 'GALAXY' \
               ORDER BY color DESC LIMIT 100";
    c.bench_function("parse_and_plan", |b| {
        b.iter(|| black_box(archive.explain(sql).unwrap().root.size()));
    });
    // The prepared-statement path pays that once: preparing includes the
    // cost estimate, re-running binds parameters only.
    c.bench_function("prepare_once", |b| {
        b.iter(|| black_box(archive.prepare(sql).unwrap().n_params()));
    });
}

criterion_group!(benches, bench_cone_queries, bench_parse_plan);
criterion_main!(benches);
