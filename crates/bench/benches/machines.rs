//! Criterion benches for the dataflow machines (E4/E7/E10 timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdss_bench::{build_stores, standard_sky};
use sdss_catalog::TagObject;
use sdss_dataflow::{
    parallel_sort_by_key, HashMachine, ObjPredicate, PairPredicate, ScanMachine, SimCluster,
};
use std::hint::black_box;
use std::sync::Arc;

fn bench_scan_machine(c: &mut Criterion) {
    let objs = standard_sky(20_000, 71);
    let (store, _) = build_stores(&objs, 7);
    let pred: ObjPredicate = Arc::new(|o| o.mag(2) < 20.0);
    let mut group = c.benchmark_group("scan_machine");
    group.throughput(Throughput::Bytes(store.bytes() as u64));
    for nodes in [1usize, 4, 8] {
        let cluster = SimCluster::from_store(&store, nodes).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            let machine = ScanMachine::new(&cluster).unwrap();
            b.iter(|| {
                let mut n = 0usize;
                machine.run_query(pred.clone(), |_| n += 1).unwrap();
                black_box(n)
            });
        });
    }
    group.finish();
}

fn bench_hash_machine(c: &mut Criterion) {
    let tags: Vec<TagObject> = standard_sky(10_000, 72)
        .iter()
        .map(TagObject::from_photo)
        .collect();
    let pred: PairPredicate = Arc::new(|_, _| true);
    let radius = 30.0 / 3600.0;
    let machine = HashMachine {
        bucket_level: 9,
        margin_deg: radius,
        n_workers: 4,
    };
    c.bench_function("hash_machine_pairs_10k", |b| {
        b.iter(|| black_box(machine.find_pairs(&tags, radius, &pred).unwrap().0.len()));
    });
}

fn bench_sort(c: &mut Criterion) {
    let tags: Vec<TagObject> = standard_sky(50_000, 73)
        .iter()
        .map(TagObject::from_photo)
        .collect();
    let mut group = c.benchmark_group("river_sort_50k");
    group.throughput(Throughput::Bytes(
        (tags.len() * TagObject::SERIALIZED_LEN) as u64,
    ));
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    parallel_sort_by_key(&tags, |t| t.mags[2] as f64, w)
                        .unwrap()
                        .0
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_machine, bench_hash_machine, bench_sort);
criterion_main!(benches);
