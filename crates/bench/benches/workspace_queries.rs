//! Session-workspace throughput — the measurements the compositional
//! query surface exists for:
//!
//! * **INTO materialization, fast vs fetch** — `SELECT objid INTO s FROM
//!   photoobj ...` through the **direct columnar fast path** (tag-routed
//!   scans project whole tag records straight from the column lanes into
//!   the set builder) vs the stream-and-fetch path (stacking a no-op
//!   `LIMIT` over the same scan forces the per-objid full-store fetch
//!   route — the identical scan, the PR 4 materialization mechanics).
//! * **stored-set scan vs base scan** — the same compiled predicate run
//!   `FROM s` (morsels = set chunks) and against the base tag partition;
//!   the ratio shows stored sets ride the same memory-bandwidth path,
//!   with the set scan reading only the candidate subset.
//! * **cross-match pair throughput** — `MATCH(cand, cand, r)` pair rows
//!   per second through the morsel-parallel zone-index join, plus the
//!   in-scan-folded `COUNT(*)` pair-count rate.
//!
//! Emits `BENCH_workspace.json`. Scans run at 1 and 4 workers per query;
//! judge wall-clock speedups against the recorded `cores` (a single-core
//! runner caps at ~1.0 regardless of architecture).

use sdss_bench::{build_stores, standard_sky};
use sdss_query::{AdmissionConfig, Archive, ArchiveConfig, Session, SessionConfig};
use sdss_storage::{ObjectStore, TagStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N_OBJECTS: usize = 120_000;
const WORKER_COUNTS: &[usize] = &[1, 4];
/// Timed repetitions per configuration (best-of to shed scheduler noise).
const REPS: usize = 5;

/// The candidate cut: keeps a substantial fraction of the sky.
const INTO_SQL: &str = "SELECT objid INTO cand FROM photoobj WHERE r < 22";
/// The same cut with a no-op LIMIT stacked on top: the plan shape
/// disqualifies the direct columnar fast path, so this measures the
/// stream-and-fetch materialization route over the identical scan.
const INTO_FETCH_SQL: &str = "SELECT objid INTO cand FROM photoobj WHERE r < 22 LIMIT 1000000000";
/// The cross-match workload: candidate-vs-candidate pairs at 30".
const MATCH_SQL: &str = "SELECT a.objid, b.objid, sep_arcsec FROM MATCH(cand, cand, 30)";
const MATCH_COUNT_SQL: &str = "SELECT COUNT(*) FROM MATCH(cand, cand, 30)";
/// The refinement predicate run over the set and over the base archive.
const SET_SCAN_SQL: &str = "SELECT objid, r, gr FROM cand WHERE gr > 0.2";
const BASE_SCAN_SQL: &str = "SELECT objid, r, gr FROM photoobj WHERE r < 22 AND gr > 0.2";

fn archive_with_workers(store: &Arc<ObjectStore>, tags: &Arc<TagStore>, workers: usize) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: workers.max(1) * 2,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

fn session_for(archive: &Archive) -> Session {
    archive.session_with(SessionConfig {
        max_bytes: 1 << 30,
        ..SessionConfig::default()
    })
}

/// Best-of-REPS wall seconds running `sql` on `session`, returning the
/// scanned-row count of the last run.
fn best_seconds(session: &Session, sql: &str) -> (f64, u64) {
    let prepared = session.prepare(sql).expect("query prepares");
    let mut best = f64::INFINITY;
    let mut rows = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = prepared.run().expect("query runs");
        let dt = t0.elapsed().as_secs_f64();
        rows = out.stats.scan.rows_scanned;
        black_box(out.rows.len());
        best = best.min(dt);
    }
    (best, rows)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("workspace queries ({N_OBJECTS} objects, {cores} core(s), best of {REPS})\n");
    let objs = standard_sky(N_OBJECTS, 2029);
    let (store, tags) = build_stores(&objs, 6);
    let (store, tags) = (Arc::new(store), Arc::new(tags));

    // --- INTO materialization (serial archive: the sink is the work) ---
    let serial = archive_with_workers(&store, &tags, 1);
    let session = session_for(&serial);
    session.run(INTO_SQL).expect("warmup INTO");
    let mut best_into = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        session.run(INTO_SQL).expect("INTO runs");
        best_into = best_into.min(t0.elapsed().as_secs_f64());
    }
    let info = session.set_info("cand").expect("set landed");
    let into_rps = info.rows as f64 / best_into;

    // The fetch route over the identical scan: the PR 4 baseline
    // mechanics (stream batches, dedup objids, per-objid full-store
    // fetch, rebuild the tag record).
    let mut best_fetch = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        session.run(INTO_FETCH_SQL).expect("fetch INTO runs");
        best_fetch = best_fetch.min(t0.elapsed().as_secs_f64());
    }
    let fetch_info = session.set_info("cand").expect("set landed");
    assert_eq!(fetch_info.rows, info.rows, "both INTO routes agree");
    let into_fetch_rps = info.rows as f64 / best_fetch;
    let into_fast_speedup = into_rps / into_fetch_rps;
    println!(
        "INTO materialization: {} rows -> {} chunks ({:.1} MB)\n  \
         direct columnar path: {into_rps:.0} rows/s\n  \
         stream-and-fetch path: {into_fetch_rps:.0} rows/s\n  \
         fast-path speedup: {into_fast_speedup:.1}x\n",
        info.rows,
        info.chunks,
        info.bytes as f64 / 1e6
    );

    // --- cross-match pair throughput over the candidate set -----------
    let match_archive = archive_with_workers(&store, &tags, 4);
    let match_session = session_for(&match_archive);
    match_session.run(INTO_SQL).expect("materialize for MATCH");
    let match_prepared = match_session.prepare(MATCH_SQL).expect("MATCH prepares");
    let mut best_match = f64::INFINITY;
    let mut match_pairs = 0usize;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = match_prepared.run().expect("MATCH runs");
        best_match = best_match.min(t0.elapsed().as_secs_f64());
        match_pairs = out.rows.len();
        black_box(out.rows.len());
    }
    let match_rps = match_pairs as f64 / best_match;
    let count_prepared = match_session.prepare(MATCH_COUNT_SQL).expect("prepares");
    let mut best_count = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = count_prepared.run().expect("COUNT MATCH runs");
        best_count = best_count.min(t0.elapsed().as_secs_f64());
        black_box(out.rows.len());
    }
    let match_count_rps = match_pairs as f64 / best_count;
    println!(
        "cross-match MATCH(cand, cand, 30\"): {match_pairs} pairs at \
         {match_rps:.0} pairs/s (COUNT folds in-scan at {match_count_rps:.0} pairs/s)\n"
    );

    // --- stored-set scan vs equivalent base-archive scan --------------
    println!(
        "{:<9} {:>16} {:>16} {:>14} {:>10}",
        "workers", "set-scan rows/s", "base-scan rows/s", "set speedup", "bytes rat."
    );
    println!("{}", "-".repeat(70));
    let mut entries = Vec::new();
    let mut set_1w = 0.0f64;
    for &workers in WORKER_COUNTS {
        let archive = archive_with_workers(&store, &tags, workers);
        let session = session_for(&archive);
        session.run(INTO_SQL).expect("materialize per archive");
        let (set_s, set_rows) = best_seconds(&session, SET_SCAN_SQL);
        let (base_s, base_rows) = best_seconds(&session, BASE_SCAN_SQL);
        if workers == 1 {
            set_1w = set_s;
        }
        let set_rps = set_rows as f64 / set_s;
        let base_rps = base_rows as f64 / base_s;
        let speedup = set_1w / set_s;
        // Bytes advantage of scanning only the candidate set.
        let set_bytes = session.set_info("cand").unwrap().bytes as f64;
        let base_bytes = tags.bytes() as f64;
        let bytes_ratio = base_bytes / set_bytes;
        println!(
            "{workers:<9} {set_rps:>16.0} {base_rps:>16.0} {speedup:>13.2}x {bytes_ratio:>9.2}x"
        );
        entries.push(format!(
            "    {{\"workers\": {workers}, \"set_scan_rows_per_sec\": {set_rps:.0}, \
             \"base_scan_rows_per_sec\": {base_rps:.0}, \"set_speedup\": {speedup:.2}, \
             \"bytes_ratio\": {bytes_ratio:.2}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"workspace_queries\",\n  \"objects\": {N_OBJECTS},\n  \
         \"cores\": {cores},\n  \"set_rows\": {},\n  \"set_chunks\": {},\n  \
         \"into_rows_per_sec\": {into_rps:.0},\n  \
         \"into_fetch_rows_per_sec\": {into_fetch_rps:.0},\n  \
         \"into_fast_speedup\": {into_fast_speedup:.2},\n  \
         \"match_pairs\": {match_pairs},\n  \
         \"match_pairs_per_sec\": {match_rps:.0},\n  \
         \"match_count_pairs_per_sec\": {match_count_rps:.0},\n  \"runs\": [\n{}\n  ]\n}}\n",
        info.rows,
        info.chunks,
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_workspace.json");
    std::fs::write(&path, json).expect("write BENCH_workspace.json");
    println!("\nwrote {}", path.display());
    if cores == 1 {
        println!("note: single-core machine — scan speedups cap at ~1.0 here;");
        println!("      run on a multi-core host (CI) for the real scaling numbers.");
    }
}
