//! Session-workspace throughput — the measurements the compositional
//! query surface exists for:
//!
//! * **INTO materialization** — `SELECT objid INTO s FROM photoobj ...`:
//!   rows/s folded through the writer sink (scan + dedup + tag-record
//!   fetch + columnar chunk build) into a named server-side set.
//! * **stored-set scan vs base scan** — the same compiled predicate run
//!   `FROM s` (morsels = set chunks) and against the base tag partition;
//!   the ratio shows stored sets ride the same memory-bandwidth path,
//!   with the set scan reading only the candidate subset.
//!
//! Emits `BENCH_workspace.json`. Scans run at 1 and 4 workers per query;
//! judge wall-clock speedups against the recorded `cores` (a single-core
//! runner caps at ~1.0 regardless of architecture).

use sdss_bench::{build_stores, standard_sky};
use sdss_query::{AdmissionConfig, Archive, ArchiveConfig, Session, SessionConfig};
use sdss_storage::{ObjectStore, TagStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N_OBJECTS: usize = 120_000;
const WORKER_COUNTS: &[usize] = &[1, 4];
/// Timed repetitions per configuration (best-of to shed scheduler noise).
const REPS: usize = 5;

/// The candidate cut: keeps a substantial fraction of the sky.
const INTO_SQL: &str = "SELECT objid INTO cand FROM photoobj WHERE r < 22";
/// The refinement predicate run over the set and over the base archive.
const SET_SCAN_SQL: &str = "SELECT objid, r, gr FROM cand WHERE gr > 0.2";
const BASE_SCAN_SQL: &str =
    "SELECT objid, r, gr FROM photoobj WHERE r < 22 AND gr > 0.2";

fn archive_with_workers(
    store: &Arc<ObjectStore>,
    tags: &Arc<TagStore>,
    workers: usize,
) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: workers.max(1) * 2,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

fn session_for(archive: &Archive) -> Session {
    archive.session_with(SessionConfig {
        max_bytes: 1 << 30,
        ..SessionConfig::default()
    })
}

/// Best-of-REPS wall seconds running `sql` on `session`, returning the
/// scanned-row count of the last run.
fn best_seconds(session: &Session, sql: &str) -> (f64, u64) {
    let prepared = session.prepare(sql).expect("query prepares");
    let mut best = f64::INFINITY;
    let mut rows = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = prepared.run().expect("query runs");
        let dt = t0.elapsed().as_secs_f64();
        rows = out.stats.scan.rows_scanned;
        black_box(out.rows.len());
        best = best.min(dt);
    }
    (best, rows)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "workspace queries ({N_OBJECTS} objects, {cores} core(s), best of {REPS})\n"
    );
    let objs = standard_sky(N_OBJECTS, 2029);
    let (store, tags) = build_stores(&objs, 6);
    let (store, tags) = (Arc::new(store), Arc::new(tags));

    // --- INTO materialization (serial archive: the sink is the work) ---
    let serial = archive_with_workers(&store, &tags, 1);
    let session = session_for(&serial);
    session.run(INTO_SQL).expect("warmup INTO");
    let mut best_into = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        session.run(INTO_SQL).expect("INTO runs");
        best_into = best_into.min(t0.elapsed().as_secs_f64());
    }
    let info = session.set_info("cand").expect("set landed");
    let into_rps = info.rows as f64 / best_into;
    println!(
        "INTO materialization: {} rows -> {} chunks ({:.1} MB) at {into_rps:.0} rows/s\n",
        info.rows,
        info.chunks,
        info.bytes as f64 / 1e6
    );

    // --- stored-set scan vs equivalent base-archive scan --------------
    println!(
        "{:<9} {:>16} {:>16} {:>14} {:>10}",
        "workers", "set-scan rows/s", "base-scan rows/s", "set speedup", "bytes rat."
    );
    println!("{}", "-".repeat(70));
    let mut entries = Vec::new();
    let mut set_1w = 0.0f64;
    for &workers in WORKER_COUNTS {
        let archive = archive_with_workers(&store, &tags, workers);
        let session = session_for(&archive);
        session.run(INTO_SQL).expect("materialize per archive");
        let (set_s, set_rows) = best_seconds(&session, SET_SCAN_SQL);
        let (base_s, base_rows) = best_seconds(&session, BASE_SCAN_SQL);
        if workers == 1 {
            set_1w = set_s;
        }
        let set_rps = set_rows as f64 / set_s;
        let base_rps = base_rows as f64 / base_s;
        let speedup = set_1w / set_s;
        // Bytes advantage of scanning only the candidate set.
        let set_bytes = session.set_info("cand").unwrap().bytes as f64;
        let base_bytes = tags.bytes() as f64;
        let bytes_ratio = base_bytes / set_bytes;
        println!(
            "{workers:<9} {set_rps:>16.0} {base_rps:>16.0} {speedup:>13.2}x {bytes_ratio:>9.2}x"
        );
        entries.push(format!(
            "    {{\"workers\": {workers}, \"set_scan_rows_per_sec\": {set_rps:.0}, \
             \"base_scan_rows_per_sec\": {base_rps:.0}, \"set_speedup\": {speedup:.2}, \
             \"bytes_ratio\": {bytes_ratio:.2}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"workspace_queries\",\n  \"objects\": {N_OBJECTS},\n  \
         \"cores\": {cores},\n  \"set_rows\": {},\n  \"set_chunks\": {},\n  \
         \"into_rows_per_sec\": {into_rps:.0},\n  \"runs\": [\n{}\n  ]\n}}\n",
        info.rows,
        info.chunks,
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_workspace.json");
    std::fs::write(&path, json).expect("write BENCH_workspace.json");
    println!("\nwrote {}", path.display());
    if cores == 1 {
        println!("note: single-core machine — scan speedups cap at ~1.0 here;");
        println!("      run on a multi-core host (CI) for the real scaling numbers.");
    }
}
