//! Criterion microbenchmarks for the HTM core (E2/E3 timing side):
//! point→trixel lookup and region cover computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdss_htm::{lookup_id, Cover, Region};
use sdss_skycoords::{Frame, UnitVec3, Vec3};
use std::hint::black_box;

fn random_points(n: usize) -> Vec<UnitVec3> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..n)
        .map(|_| {
            let z: f64 = rng.gen_range(-1.0..1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (1.0 - z * z).sqrt();
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
                .normalized()
                .unwrap()
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let points = random_points(1024);
    let mut group = c.benchmark_group("htm_lookup");
    for level in [6u8, 10, 14, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % points.len();
                black_box(lookup_id(points[i], level).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm_cover");
    for (name, domain) in [
        ("circle_1deg", Region::circle(185.0, 15.0, 1.0).unwrap()),
        ("circle_10deg", Region::circle(185.0, 15.0, 10.0).unwrap()),
        (
            "fig4_bands",
            Region::band(Frame::Equatorial, 10.0, 25.0)
                .unwrap()
                .intersect(&Region::band(Frame::Galactic, 40.0, 90.0).unwrap()),
        ),
    ] {
        for level in [8u8, 10] {
            group.bench_function(format!("{name}/level{level}"), |b| {
                b.iter(|| black_box(Cover::compute(&domain, level).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_point_classify(c: &mut Criterion) {
    let points = random_points(1024);
    let domain = Region::circle(185.0, 15.0, 5.0).unwrap();
    let cover = Cover::compute(&domain, 10).unwrap();
    c.bench_function("cover_classify_point", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % points.len();
            black_box(cover.classify_point(points[i]))
        });
    });
}

criterion_group!(benches, bench_lookup, bench_cover, bench_point_classify);
criterion_main!(benches);
