//! Intra-query parallel scan throughput — the measurement the
//! morsel-driven refactor exists for: one heavy query saturating the
//! machine instead of one core.
//!
//! Two workloads, both on the compiled tag path:
//!
//! * **heavy sweep** — an unrestricted full-store projection scan
//!   (`r < 30` keeps every row), the single-query analog of the paper's
//!   20-node scan-machine sweep;
//! * **aggregate** — `COUNT/AVG/MIN/MAX` over a color cut, folded inside
//!   the scan workers (no `__agg_i` columns through the channel fabric).
//!
//! Each runs at 1/2/4/8 workers per query; the emitted
//! `BENCH_parallel_scan.json` carries wall-clock speedups vs the serial
//! path and the parallel efficiency (speedup / workers), plus the
//! machine's core count — on a single-core CI runner the physics caps
//! speedup at ~1.0 regardless of the architecture, so readers must judge
//! the numbers against `cores`.

use sdss_bench::{build_stores, standard_sky};
use sdss_query::{AdmissionConfig, Archive, ArchiveConfig};
use sdss_storage::{ObjectStore, TagStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N_OBJECTS: usize = 120_000;
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Timed repetitions per configuration (best-of to shed scheduler noise).
const REPS: usize = 5;

const SWEEP_SQL: &str = "SELECT objid, ra, dec, r FROM photoobj WHERE r < 30";
const AGG_SQL: &str = "SELECT COUNT(*), AVG(r), MIN(r), MAX(r) FROM photoobj WHERE gr > 0.1";

fn archive_with_workers(store: &Arc<ObjectStore>, tags: &Arc<TagStore>, workers: usize) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: workers.max(1) * 2,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

/// Best-of-REPS wall seconds for one prepared statement, asserting the
/// pool engaged as configured.
fn best_seconds(archive: &Archive, sql: &str, want_workers: usize) -> (f64, u64) {
    let prepared = archive.prepare(sql).expect("query prepares");
    let mut best = f64::INFINITY;
    let mut rows = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = prepared.run().expect("query runs");
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.columnar, "{sql} missed the compiled path");
        assert_eq!(out.stats.workers_granted, want_workers, "{sql}");
        assert!(out.stats.morsels > 0, "{sql} dispatched no morsels");
        rows = out.stats.scan.rows_scanned;
        black_box(out.rows.len());
        best = best.min(dt);
    }
    (best, rows)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("parallel scan throughput ({N_OBJECTS} objects, {cores} core(s), best of {REPS})\n");
    let objs = standard_sky(N_OBJECTS, 2028);
    let (store, tags) = build_stores(&objs, 6);
    let (store, tags) = (Arc::new(store), Arc::new(tags));
    println!(
        "tag store: {} containers, {:.1} MB\n",
        tags.num_containers(),
        tags.bytes() as f64 / 1e6
    );

    // Warm covers/allocator.
    archive_with_workers(&store, &tags, 1)
        .run(SWEEP_SQL)
        .expect("warmup");

    let mut entries = Vec::new();
    let (mut sweep_1w, mut agg_1w) = (0.0f64, 0.0f64);
    let mut sweep_speedup_4w = 0.0f64;
    println!(
        "{:<9} {:>14} {:>9} {:>10} {:>14} {:>9} {:>10}",
        "workers", "sweep rows/s", "speedup", "efficiency", "agg rows/s", "speedup", "efficiency"
    );
    println!("{}", "-".repeat(80));
    for &workers in WORKER_COUNTS {
        let archive = archive_with_workers(&store, &tags, workers);
        let (sweep_s, sweep_rows) = best_seconds(&archive, SWEEP_SQL, workers);
        let (agg_s, agg_rows) = best_seconds(&archive, AGG_SQL, workers);
        if workers == 1 {
            sweep_1w = sweep_s;
            agg_1w = agg_s;
        }
        let sweep_speedup = sweep_1w / sweep_s;
        let agg_speedup = agg_1w / agg_s;
        if workers == 4 {
            sweep_speedup_4w = sweep_speedup;
        }
        let sweep_rps = sweep_rows as f64 / sweep_s;
        let agg_rps = agg_rows as f64 / agg_s;
        println!(
            "{workers:<9} {sweep_rps:>14.0} {sweep_speedup:>8.2}x {:>10.2} {agg_rps:>14.0} {agg_speedup:>8.2}x {:>10.2}",
            sweep_speedup / workers as f64,
            agg_speedup / workers as f64,
        );
        entries.push(format!(
            "    {{\"workers\": {workers}, \"sweep_rows_per_sec\": {sweep_rps:.0}, \
             \"sweep_speedup\": {sweep_speedup:.2}, \
             \"sweep_efficiency\": {:.2}, \
             \"agg_rows_per_sec\": {agg_rps:.0}, \"agg_speedup\": {agg_speedup:.2}, \
             \"agg_efficiency\": {:.2}}}",
            sweep_speedup / workers as f64,
            agg_speedup / workers as f64,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel_scan\",\n  \"objects\": {N_OBJECTS},\n  \
         \"cores\": {cores},\n  \"containers\": {},\n  \
         \"sweep_speedup_4w\": {sweep_speedup_4w:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        tags.num_containers(),
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_parallel_scan.json");
    std::fs::write(&path, json).expect("write BENCH_parallel_scan.json");
    println!("\nwrote {}", path.display());
    if cores == 1 {
        println!("note: single-core machine — wall-clock speedup is capped at ~1.0 here;");
        println!("      run on a multi-core host (CI) for the real scaling numbers.");
    }
}
