//! Columnar batch execution vs row-at-a-time interpretation (the
//! tentpole measurement for the compiled tag-scan path).
//!
//! Workload: E5-style popular-attribute predicate queries over the tag
//! partition — the query class the paper says dominates the archive
//! ("searched more than 10 times faster, if no other attributes are
//! involved"). Both engines run the *same* plans over the *same* stores;
//! the only difference is `ExecMode`.
//!
//! Besides the criterion groups, the harness emits
//! `BENCH_batch_exec.json` at the workspace root with rows/second for
//! both modes and the speedup, so CI and later sessions can track the
//! compiled-path advantage numerically.

use criterion::{criterion_group, Criterion, Throughput};
use sdss_bench::{build_stores, standard_sky};
use sdss_query::{Archive, ArchiveConfig, ExecMode};
use sdss_storage::{ObjectStore, TagStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N_OBJECTS: usize = 60_000;

/// The E5-style query mix: popular attributes only, varying selectivity
/// and operator coverage.
const QUERIES: &[(&str, &str)] = &[
    (
        "galaxy_color_cut",
        "SELECT objid, ra, dec, r FROM photoobj \
         WHERE r < 20 AND gr BETWEEN 0.3 AND 0.9 AND class = 'GALAXY'",
    ),
    (
        "bright_selective",
        "SELECT objid, r FROM photoobj WHERE r < 17.5",
    ),
    (
        "quasar_colors",
        "SELECT objid, ug, gr FROM photoobj \
         WHERE class = 'QSO' AND ug < 0.6 AND SQRT(size) < 2",
    ),
    (
        "cone_and_predicate",
        "SELECT objid, ra, dec, r, class FROM photoobj \
         WHERE CIRCLE(185, 15, 2.5) AND r < 21 AND iz > 0.05",
    ),
    (
        "count_aggregate",
        "SELECT COUNT(*) FROM photoobj WHERE r BETWEEN 18 AND 21 AND class != 'STAR'",
    ),
];

/// Two archive handles over the same stores, compiled vs interpreted.
fn archive_pair(store: ObjectStore, tags: TagStore) -> (Archive, Archive) {
    let (store, tags) = (Arc::new(store), Arc::new(tags));
    let compiled = Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            mode: ExecMode::Auto,
            ..ArchiveConfig::default()
        },
    );
    let interpreted = Archive::with_config(
        store,
        Some(tags),
        ArchiveConfig {
            mode: ExecMode::Interpreted,
            ..ArchiveConfig::default()
        },
    );
    (compiled, interpreted)
}

fn bench_batch_exec(c: &mut Criterion) {
    let objs = standard_sky(N_OBJECTS, 2026);
    let (store, tags) = build_stores(&objs, 6);
    let n_rows = tags.len() as u64;
    let (compiled, interpreted) = archive_pair(store, tags);

    for (name, sql) in QUERIES {
        // Sanity: identical results and the compiled path engaging.
        let a = compiled.run(sql).expect("query runs");
        let b = interpreted.run(sql).expect("query runs");
        assert_eq!(a.rows.len(), b.rows.len(), "{name} diverged");
        assert!(a.stats.columnar, "{name} did not take the compiled path");

        let mut group = c.benchmark_group(format!("batch_exec/{name}"));
        group.throughput(Throughput::Elements(n_rows));
        group.bench_function("interpreted_rows", |bch| {
            bch.iter(|| black_box(interpreted.run(sql).unwrap().rows.len()));
        });
        group.bench_function("compiled_columnar", |bch| {
            bch.iter(|| black_box(compiled.run(sql).unwrap().rows.len()));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_batch_exec);

/// Best-of-N wall time for one archive+query, re-executing one prepared
/// statement (the server-shaped hot path: no per-run parse/plan).
fn best_secs(archive: &Archive, sql: &str, runs: usize) -> f64 {
    let prepared = archive.prepare(sql).expect("query prepares");
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        black_box(prepared.run().expect("query runs").rows.len());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn emit_json() {
    let objs = standard_sky(N_OBJECTS, 2026);
    let (store, tags) = build_stores(&objs, 6);
    let scanned_rows = tags.len() as f64;
    let (compiled, interpreted) = archive_pair(store, tags);

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    let mut headline = 0.0f64;
    for (name, sql) in QUERIES {
        // Warm both paths (cover cache, allocator) before timing.
        let _ = compiled.run(sql).unwrap();
        let _ = interpreted.run(sql).unwrap();
        let t_int = best_secs(&interpreted, sql, 5);
        let t_col = best_secs(&compiled, sql, 5);
        let rps_int = scanned_rows / t_int;
        let rps_col = scanned_rows / t_col;
        let speedup = rps_col / rps_int;
        speedups.push(speedup);
        if *name == "galaxy_color_cut" {
            headline = speedup;
        }
        entries.push(format!(
            "    {{\"query\": \"{name}\", \"interpreted_rows_per_sec\": {rps_int:.0}, \
             \"compiled_rows_per_sec\": {rps_col:.0}, \"speedup\": {speedup:.2}}}"
        ));
        println!(
            "{name:<24} interpreted {rps_int:>12.0} rows/s   compiled {rps_col:>12.0} rows/s   {speedup:>5.2}x"
        );
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("geomean speedup {geomean:.2}x   headline (galaxy_color_cut) {headline:.2}x");
    let json = format!(
        "{{\n  \"bench\": \"batch_exec\",\n  \"objects\": {N_OBJECTS},\n  \
         \"headline_popular_attribute_speedup\": {headline:.2},\n  \
         \"geomean_speedup\": {geomean:.2},\n  \"queries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_batch_exec.json");
    std::fs::write(&path, json).expect("write BENCH_batch_exec.json");
    println!("wrote {}", path.display());
}

fn main() {
    benches();
    emit_json();
}
