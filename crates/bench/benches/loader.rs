//! Criterion benches for bulk loading (E9 timing side): clustered vs
//! naive chunk loads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdss_bench::standard_sky;
use sdss_loader::chunk::chunks_from_catalog;
use sdss_loader::{load_clustered, load_naive};
use sdss_storage::{ObjectStore, StoreConfig};
use std::hint::black_box;

fn bench_loads(c: &mut Criterion) {
    let objs = standard_sky(10_000, 81);
    let chunks = chunks_from_catalog(objs, 1).unwrap();
    let chunk = &chunks[0];

    let mut group = c.benchmark_group("chunk_load_10k");
    group.throughput(Throughput::Bytes(chunk.bytes() as u64));
    group.sample_size(10);
    group.bench_function("clustered", |b| {
        b.iter(|| {
            let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
            black_box(load_clustered(&mut store, chunk).unwrap().objects)
        });
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
            black_box(load_naive(&mut store, chunk).unwrap().objects)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_loads);
criterion_main!(benches);
