//! # Archive network simulation (paper Figure 2) and the data pump
//!
//! The paper's data-flow: telescope tapes reach the Operational Archive
//! within a day; calibrated data is published to the Master Science
//! Archive within two weeks; Local Archives replicate within another two
//! weeks; public archives receive data after 1–2 years of science
//! verification. [`replication`] reproduces that timeline with a
//! discrete-event simulation; [`pump`] models the central servers'
//! sweeping data pump.

pub mod event;
pub mod pump;
pub mod replication;

pub use event::{EventQueue, SimClock};
pub use pump::{DataPump, SweepReport};
pub use replication::{ArchiveNetwork, ArchiveSite, PublicationRecord, SiteKind};

/// Errors produced by the archive-sim crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchiveError {
    /// Malformed network topology (unknown site, cycle, ...).
    InvalidTopology(String),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::InvalidTopology(m) => write!(f, "invalid topology: {m}"),
        }
    }
}

impl std::error::Error for ArchiveError {}
