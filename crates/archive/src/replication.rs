//! The Figure 2 archive network.
//!
//! > "Telescope data (T) is shipped on tapes to FNAL, where it is
//! > processed into the Operational Archive (OA). Calibrated data is
//! > transferred into the Master Science Archive (MSA) and then to Local
//! > Archives (LA). The data gets into the public archives (MPA, PA)
//! > after approximately 1-2 years of science verification."
//!
//! with the latency ladder printed beside the figure: 1 day → 1 week →
//! 2 weeks → 1 month → 1–2 years. The simulation publishes nightly chunks
//! through that ladder with a discrete-event queue and records when each
//! site first holds each chunk — the data behind the `fig2_pipeline`
//! harness.

use crate::event::EventQueue;
use crate::ArchiveError;
use std::collections::BTreeMap;

/// The archive tiers of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiteKind {
    /// The telescope (tape source).
    Telescope,
    /// Operational Archive at FNAL.
    Operational,
    /// Master Science Archive.
    MasterScience,
    /// A local (mirror) science archive.
    Local,
    /// Master public archive.
    MasterPublic,
    /// A public mirror.
    Public,
}

impl std::fmt::Display for SiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SiteKind::Telescope => "T",
            SiteKind::Operational => "OA",
            SiteKind::MasterScience => "MSA",
            SiteKind::Local => "LA",
            SiteKind::MasterPublic => "MPA",
            SiteKind::Public => "PA",
        };
        f.write_str(s)
    }
}

/// One archive site.
#[derive(Debug, Clone)]
pub struct ArchiveSite {
    pub kind: SiteKind,
    pub name: String,
    /// chunk id → sim day it arrived here.
    pub holdings: BTreeMap<u32, f64>,
}

/// One replication edge: data flows `from → to` with `delay_days`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    delay_days: f64,
}

/// A publication record: when a chunk reached a site.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicationRecord {
    pub chunk: u32,
    pub site: String,
    pub day: f64,
}

/// The simulated archive network.
#[derive(Debug)]
pub struct ArchiveNetwork {
    sites: Vec<ArchiveSite>,
    edges: Vec<Edge>,
}

/// Event payload: a chunk arriving at a site.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    chunk: u32,
    site: usize,
}

impl ArchiveNetwork {
    /// The paper's topology: T → OA (1 day) → MSA (2 weeks) →
    /// `n_local` LAs (2 weeks) and MSA → MPA (1.5 years of verification)
    /// → `n_public` PAs (1 month).
    pub fn sdss_default(n_local: usize, n_public: usize) -> ArchiveNetwork {
        let mut sites = vec![
            ArchiveSite::new(SiteKind::Telescope, "APO telescope"),
            ArchiveSite::new(SiteKind::Operational, "FNAL OA"),
            ArchiveSite::new(SiteKind::MasterScience, "MSA"),
            ArchiveSite::new(SiteKind::MasterPublic, "MPA"),
        ];
        let mut edges = vec![
            // Tapes to FNAL and reduction into the OA: ~1 day.
            Edge {
                from: 0,
                to: 1,
                delay_days: 1.0,
            },
            // "Within two weeks the calibrated data is published to the
            // Science Archive."
            Edge {
                from: 1,
                to: 2,
                delay_days: 14.0,
            },
            // "The data gets into the public archives after approximately
            // 1-2 years of science verification."
            Edge {
                from: 2,
                to: 3,
                delay_days: 548.0,
            },
        ];
        for i in 0..n_local {
            let idx = sites.len();
            sites.push(ArchiveSite::new(SiteKind::Local, &format!("LA-{i}")));
            // "Science archive data is replicated to Local Archives within
            // another two weeks."
            edges.push(Edge {
                from: 2,
                to: idx,
                delay_days: 14.0,
            });
        }
        for i in 0..n_public {
            let idx = sites.len();
            sites.push(ArchiveSite::new(SiteKind::Public, &format!("PA-{i}")));
            edges.push(Edge {
                from: 3,
                to: idx,
                delay_days: 30.0,
            });
        }
        ArchiveNetwork { sites, edges }
    }

    pub fn sites(&self) -> &[ArchiveSite] {
        &self.sites
    }

    fn site_index(&self, name: &str) -> Result<usize, ArchiveError> {
        self.sites
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| ArchiveError::InvalidTopology(format!("unknown site {name}")))
    }

    /// Run the simulation: `n_chunks` nightly chunks leave the telescope
    /// on consecutive days; returns every arrival in time order.
    pub fn run(&mut self, n_chunks: u32) -> Vec<PublicationRecord> {
        let mut q: EventQueue<Arrival> = EventQueue::new();
        for chunk in 0..n_chunks {
            q.schedule_at(chunk as f64, Arrival { chunk, site: 0 });
        }
        let mut log = Vec::new();
        while let Some(event) = q.pop() {
            let Arrival { chunk, site } = event.payload;
            // First arrival wins (the DAG here has unique paths anyway).
            if self.sites[site].holdings.contains_key(&chunk) {
                continue;
            }
            self.sites[site].holdings.insert(chunk, event.time);
            log.push(PublicationRecord {
                chunk,
                site: self.sites[site].name.clone(),
                day: event.time,
            });
            for edge in self.edges.iter().filter(|e| e.from == site) {
                q.schedule_in(
                    edge.delay_days,
                    Arrival {
                        chunk,
                        site: edge.to,
                    },
                );
            }
        }
        log
    }

    /// Latency from telescope to a named site for a chunk, if it arrived.
    pub fn latency_days(&self, site_name: &str, chunk: u32) -> Result<Option<f64>, ArchiveError> {
        let site = self.site_index(site_name)?;
        let t0 = self.sites[0].holdings.get(&chunk);
        let t1 = self.sites[site].holdings.get(&chunk);
        Ok(match (t0, t1) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        })
    }

    /// Holdings count per site (how much of the survey each tier has).
    pub fn holdings_summary(&self) -> Vec<(String, usize)> {
        self.sites
            .iter()
            .map(|s| (s.name.clone(), s.holdings.len()))
            .collect()
    }
}

impl ArchiveSite {
    fn new(kind: SiteKind, name: &str) -> ArchiveSite {
        ArchiveSite {
            kind,
            name: name.to_string(),
            holdings: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_ladder() {
        let mut net = ArchiveNetwork::sdss_default(2, 2);
        net.run(10);
        // OA after 1 day.
        assert_eq!(net.latency_days("FNAL OA", 0).unwrap(), Some(1.0));
        // MSA at 1 day + 2 weeks.
        assert_eq!(net.latency_days("MSA", 0).unwrap(), Some(15.0));
        // LA two weeks later.
        assert_eq!(net.latency_days("LA-0", 0).unwrap(), Some(29.0));
        assert_eq!(net.latency_days("LA-1", 0).unwrap(), Some(29.0));
        // Public after ~1.5 years of verification.
        let mpa = net.latency_days("MPA", 0).unwrap().unwrap();
        assert!((540.0..=620.0).contains(&mpa), "MPA latency {mpa}");
        let pa = net.latency_days("PA-0", 0).unwrap().unwrap();
        assert!(pa > mpa, "mirror lags the master");
        // "after approximately 1-2 years"
        assert!(
            pa / 365.25 > 1.0 && pa / 365.25 < 2.0,
            "{} years",
            pa / 365.25
        );
    }

    #[test]
    fn every_chunk_reaches_every_site() {
        let mut net = ArchiveNetwork::sdss_default(3, 1);
        let n = 25;
        let log = net.run(n);
        for (site, count) in net.holdings_summary() {
            assert_eq!(count as u32, n, "{site} is missing chunks");
        }
        // The log is in non-decreasing time order.
        for w in log.windows(2) {
            assert!(w[0].day <= w[1].day);
        }
    }

    #[test]
    fn chunks_arrive_in_order_per_site() {
        let mut net = ArchiveNetwork::sdss_default(1, 1);
        net.run(5);
        for site in net.sites() {
            let days: Vec<f64> = site.holdings.values().copied().collect();
            for w in days.windows(2) {
                assert!(w[0] <= w[1], "{}: out-of-order arrivals", site.name);
            }
        }
    }

    #[test]
    fn unknown_site_is_an_error() {
        let net = ArchiveNetwork::sdss_default(1, 1);
        assert!(net.latency_days("Atlantis", 0).is_err());
    }

    #[test]
    fn science_archive_leads_public_by_years() {
        // The design point: astronomers see data ~18 months before the
        // public does.
        let mut net = ArchiveNetwork::sdss_default(1, 1);
        net.run(3);
        let la = net.latency_days("LA-0", 1).unwrap().unwrap();
        let pa = net.latency_days("PA-0", 1).unwrap().unwrap();
        assert!(pa - la > 365.0, "public lead time only {} days", pa - la);
    }
}
