//! The data pump: scheduled sweeping scans.
//!
//! Paper, §Abstract: "Central servers will operate a data pump that
//! supports sweeping searches that touch most of the data." The pump is
//! the scheduling shell around the scan machine: it accumulates sweep
//! requests, runs them in rounds, and accounts for how much of the
//! archive each round touched.

use std::collections::VecDeque;

/// One sweep request: a named predicate over the whole archive.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    pub name: String,
    /// Fraction of the archive the requester expects to read (1.0 = all).
    pub coverage: f64,
}

/// Report of one pump round.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub round: u32,
    pub queries_served: usize,
    /// Bytes touched in the round: one full pass serves *all* queued
    /// sweeps simultaneously — the pump's whole point.
    pub bytes_touched: u64,
    /// Bytes that would have been touched running each sweep separately.
    pub bytes_if_sequential: u64,
}

impl SweepReport {
    /// Sharing factor: how much I/O the shared pass saved.
    pub fn sharing_factor(&self) -> f64 {
        self.bytes_if_sequential as f64 / self.bytes_touched.max(1) as f64
    }
}

/// The data pump.
#[derive(Debug)]
pub struct DataPump {
    archive_bytes: u64,
    queue: VecDeque<SweepRequest>,
    rounds: u32,
}

impl DataPump {
    pub fn new(archive_bytes: u64) -> DataPump {
        DataPump {
            archive_bytes,
            queue: VecDeque::new(),
            rounds: 0,
        }
    }

    /// Queue a sweeping search.
    pub fn submit(&mut self, name: &str, coverage: f64) {
        self.queue.push_back(SweepRequest {
            name: name.to_string(),
            coverage: coverage.clamp(0.0, 1.0),
        });
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Run one pump round: a single pass over the archive serves every
    /// queued sweep.
    pub fn run_round(&mut self) -> Option<SweepReport> {
        if self.queue.is_empty() {
            return None;
        }
        self.rounds += 1;
        let served: Vec<SweepRequest> = self.queue.drain(..).collect();
        let sequential: u64 = served
            .iter()
            .map(|r| (r.coverage * self.archive_bytes as f64) as u64)
            .sum();
        // The shared pass must still read the union of coverages; the
        // pump reads everything once (sweeps "touch most of the data").
        let max_cov = served.iter().map(|r| r.coverage).fold(0.0f64, f64::max);
        Some(SweepReport {
            round: self.rounds,
            queries_served: served.len(),
            bytes_touched: (max_cov * self.archive_bytes as f64) as u64,
            bytes_if_sequential: sequential,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pass_amortizes_io() {
        let mut pump = DataPump::new(1_000_000);
        for i in 0..5 {
            pump.submit(&format!("sweep-{i}"), 1.0);
        }
        let report = pump.run_round().unwrap();
        assert_eq!(report.queries_served, 5);
        assert_eq!(report.bytes_touched, 1_000_000);
        assert_eq!(report.bytes_if_sequential, 5_000_000);
        assert!((report.sharing_factor() - 5.0).abs() < 1e-9);
        assert_eq!(pump.queued(), 0);
    }

    #[test]
    fn empty_round_is_none() {
        let mut pump = DataPump::new(100);
        assert!(pump.run_round().is_none());
    }

    #[test]
    fn coverage_is_clamped() {
        let mut pump = DataPump::new(100);
        pump.submit("weird", 3.0);
        let r = pump.run_round().unwrap();
        assert_eq!(r.bytes_touched, 100);
    }

    #[test]
    fn rounds_count_up() {
        let mut pump = DataPump::new(100);
        pump.submit("a", 0.5);
        let r1 = pump.run_round().unwrap();
        pump.submit("b", 0.5);
        let r2 = pump.run_round().unwrap();
        assert_eq!(r1.round, 1);
        assert_eq!(r2.round, 2);
    }
}
