//! A minimal discrete-event simulation substrate.
//!
//! Time is measured in days (the natural unit of Figure 2's latencies).
//! Events are ordered by time with a stable tiebreak on insertion order,
//! so simulations are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation clock, in days since survey start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimClock(pub f64);

/// An event scheduled on the queue.
#[derive(Debug, Clone)]
pub struct Event<T> {
    pub time: f64,
    seq: u64,
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break by insertion order (earlier seq first).
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> EventQueue<T> {
        EventQueue::default()
    }

    /// Current simulation time (days).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule a payload at absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: f64, payload: T) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time: at.max(self.now),
            seq,
            payload,
        });
    }

    /// Schedule `delay` days from now.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        self.schedule_at(self.now + delay.max(0.0), payload);
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some(e)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, 1);
        q.schedule_at(2.0, 2);
        q.schedule_at(2.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, ());
        q.schedule_in(0.5, ());
        let mut last = 0.0;
        while let Some(e) = q.pop() {
            assert!(e.time >= last);
            last = e.time;
            assert_eq!(q.now(), e.time);
        }
    }

    #[test]
    fn schedule_relative_to_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "first");
        q.pop();
        assert_eq!(q.now(), 10.0);
        q.schedule_in(4.0, "second");
        let e = q.pop().unwrap();
        assert_eq!(e.time, 14.0);
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
