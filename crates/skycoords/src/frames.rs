//! Celestial reference frames as rotation matrices.
//!
//! The paper (§Indexing the Sky): "The coordinates in the different
//! celestial coordinate systems (Equatorial, Galactic, Supergalactic, etc)
//! can be constructed from the Cartesian coordinates on the fly" and
//! "combination of constraints in arbitrary spherical coordinate systems
//! become particularly simple. They correspond to testing linear
//! combinations of the three Cartesian coordinates."
//!
//! A frame here *is* a rotation matrix from Equatorial J2000 Cartesian
//! coordinates to the frame's Cartesian coordinates. A latitude constraint
//! in any frame is then a half-space constraint `p · pole >= sin(lat)` on
//! the stored equatorial unit vector — no trigonometry per object.

use crate::spherical::SkyPos;
use crate::vec3::{UnitVec3, Vec3};

/// A 3×3 rotation matrix (rows are the new basis expressed in the old one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    pub rows: [[f64; 3]; 3],
}

impl Rotation {
    pub const IDENTITY: Rotation = Rotation {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Apply the rotation to a unit vector.
    #[inline]
    pub fn apply(&self, v: UnitVec3) -> UnitVec3 {
        let (x, y, z) = (v.x(), v.y(), v.z());
        let r = &self.rows;
        UnitVec3::new_unchecked(
            r[0][0] * x + r[0][1] * y + r[0][2] * z,
            r[1][0] * x + r[1][1] * y + r[1][2] * z,
            r[2][0] * x + r[2][1] * y + r[2][2] * z,
        )
    }

    /// The inverse rotation (transpose, since rotations are orthogonal).
    pub fn inverse(&self) -> Rotation {
        let r = &self.rows;
        Rotation {
            rows: [
                [r[0][0], r[1][0], r[2][0]],
                [r[0][1], r[1][1], r[2][1]],
                [r[0][2], r[1][2], r[2][2]],
            ],
        }
    }

    /// Compose: `self` after `other`.
    pub fn compose(&self, other: &Rotation) -> Rotation {
        let a = &self.rows;
        let b = &other.rows;
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| a[i][k] * b[k][j]).sum();
            }
        }
        Rotation { rows: out }
    }

    /// Build the rotation that maps equatorial coordinates onto a frame
    /// defined by its pole and the longitude-zero point (both given in
    /// equatorial coordinates). The frame's +z is the pole; +x points to
    /// the zero point projected orthogonal to the pole.
    pub fn from_pole_and_zero(pole: SkyPos, zero: SkyPos) -> Rotation {
        let zv = pole.unit_vec();
        let toward_zero = zero.unit_vec();
        // Remove the pole component to make x orthogonal to z.
        let xv: Vec3 = toward_zero.as_vec3() - zv.as_vec3() * zv.dot(toward_zero);
        let xv = xv
            .normalized()
            .expect("zero point must not coincide with the pole");
        let yv = zv
            .cross(xv)
            .normalized()
            .expect("cross of orthogonal unit vectors");
        Rotation {
            rows: [
                [xv.x(), xv.y(), xv.z()],
                [yv.x(), yv.y(), yv.z()],
                [zv.x(), zv.y(), zv.z()],
            ],
        }
    }
}

/// The celestial coordinate systems named by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frame {
    /// Equatorial J2000 — the storage frame.
    Equatorial,
    /// IAU 1958 Galactic coordinates (l, b).
    Galactic,
    /// de Vaucouleurs Supergalactic coordinates (SGL, SGB).
    Supergalactic,
    /// Ecliptic coordinates at J2000 obliquity.
    Ecliptic,
}

/// Galactic north pole in J2000 equatorial coordinates (IAU 1958,
/// precessed to J2000): RA 192.85948°, Dec +27.12825°.
const GAL_POLE_RA: f64 = 192.859_48;
const GAL_POLE_DEC: f64 = 27.128_25;
/// Equatorial position of the galactic longitude zero point (the galactic
/// center direction): RA 266.40499°, Dec −28.93617°.
const GAL_ZERO_RA: f64 = 266.404_99;
const GAL_ZERO_DEC: f64 = -28.936_17;

/// Supergalactic north pole in *galactic* coordinates: l=47.37°, b=+6.32°;
/// supergalactic longitude zero at l=137.37°, b=0°.
const SGAL_POLE_L: f64 = 47.37;
const SGAL_POLE_B: f64 = 6.32;
const SGAL_ZERO_L: f64 = 137.37;
const SGAL_ZERO_B: f64 = 0.0;

/// Mean obliquity of the ecliptic at J2000, degrees.
const OBLIQUITY_J2000: f64 = 23.439_291_1;

impl Frame {
    /// Rotation taking Equatorial J2000 Cartesian vectors into this frame.
    pub fn from_equatorial(self) -> Rotation {
        match self {
            Frame::Equatorial => Rotation::IDENTITY,
            Frame::Galactic => Rotation::from_pole_and_zero(
                SkyPos::new(GAL_POLE_RA, GAL_POLE_DEC).expect("constant in range"),
                SkyPos::new(GAL_ZERO_RA, GAL_ZERO_DEC).expect("constant in range"),
            ),
            Frame::Supergalactic => {
                let gal = Frame::Galactic.from_equatorial();
                // Pole/zero given in galactic coordinates; build the
                // galactic→supergalactic rotation, then compose.
                let pole_g = SkyPos::new(SGAL_POLE_L, SGAL_POLE_B).expect("constant in range");
                let zero_g = SkyPos::new(SGAL_ZERO_L, SGAL_ZERO_B).expect("constant in range");
                let sg_from_gal = Rotation::from_pole_and_zero(pole_g, zero_g);
                sg_from_gal.compose(&gal)
            }
            Frame::Ecliptic => {
                // Rotation about +x by the obliquity.
                let (s, c) = OBLIQUITY_J2000.to_radians().sin_cos();
                Rotation {
                    rows: [[1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c]],
                }
            }
        }
    }

    /// Rotation taking this frame's Cartesian vectors back to Equatorial.
    pub fn to_equatorial(self) -> Rotation {
        self.from_equatorial().inverse()
    }

    /// The frame's north pole as an equatorial unit vector.
    ///
    /// A latitude band `lat >= b0` in this frame is the half-space
    /// `p · pole >= sin(b0)` on stored equatorial vectors — this is the
    /// hook the HTM region machinery uses.
    pub fn pole(self) -> UnitVec3 {
        self.to_equatorial().apply(UnitVec3::Z)
    }

    /// Convert an equatorial position to angular coordinates in this frame.
    pub fn from_equatorial_pos(self, p: SkyPos) -> SkyPos {
        SkyPos::from_unit_vec(self.from_equatorial().apply(p.unit_vec()))
    }

    /// Convert angular coordinates in this frame to an equatorial position.
    pub fn to_equatorial_pos(self, p: SkyPos) -> SkyPos {
        SkyPos::from_unit_vec(self.to_equatorial().apply(p.unit_vec()))
    }

    /// All frames, for exhaustive tests and benches.
    pub const ALL: [Frame; 4] = [
        Frame::Equatorial,
        Frame::Galactic,
        Frame::Supergalactic,
        Frame::Ecliptic,
    ];
}

impl std::fmt::Display for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Frame::Equatorial => "Equatorial(J2000)",
            Frame::Galactic => "Galactic",
            Frame::Supergalactic => "Supergalactic",
            Frame::Ecliptic => "Ecliptic(J2000)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pos() -> impl Strategy<Value = SkyPos> {
        (0.0f64..360.0, -89.0f64..89.0).prop_map(|(ra, dec)| SkyPos::new(ra, dec).unwrap())
    }

    #[test]
    fn rotation_orthogonality() {
        for frame in Frame::ALL {
            let r = frame.from_equatorial();
            let id = r.compose(&r.inverse());
            for i in 0..3 {
                for j in 0..3 {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (id.rows[i][j] - want).abs() < 1e-12,
                        "{frame}: R*R^T[{i}][{j}] = {}",
                        id.rows[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn galactic_center_maps_to_origin() {
        // The galactic center (Sgr A* direction) is l=0, b=0 by definition.
        let gc = SkyPos::new(GAL_ZERO_RA, GAL_ZERO_DEC).unwrap();
        let g = Frame::Galactic.from_equatorial_pos(gc);
        // The published pole/center constants are rounded to ~1e-5 deg and
        // are not exactly orthogonal; sub-arcsecond residual is expected.
        assert!(g.dec_deg().abs() < 5e-4, "b = {}", g.dec_deg());
        assert!(
            g.ra_deg().min(360.0 - g.ra_deg()) < 1e-6,
            "l = {}",
            g.ra_deg()
        );
    }

    #[test]
    fn galactic_pole_maps_to_b90() {
        let pole = SkyPos::new(GAL_POLE_RA, GAL_POLE_DEC).unwrap();
        let g = Frame::Galactic.from_equatorial_pos(pole);
        assert!((g.dec_deg() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn north_celestial_pole_in_galactic() {
        // Known value: NCP is at b ≈ +27.13 deg (the galactic pole dec).
        let ncp = SkyPos::new(0.0, 90.0).unwrap();
        let g = Frame::Galactic.from_equatorial_pos(ncp);
        assert!(
            (g.dec_deg() - GAL_POLE_DEC).abs() < 1e-6,
            "b = {}",
            g.dec_deg()
        );
        // l of the NCP is 122.93 deg (the standard "theta0" constant).
        assert!((g.ra_deg() - 122.932).abs() < 0.01, "l = {}", g.ra_deg());
    }

    #[test]
    fn ecliptic_pole_known_value() {
        // The ecliptic north pole is at RA 270, Dec 66.5607 (=90-obliquity).
        let p = SkyPos::from_unit_vec(Frame::Ecliptic.pole());
        assert!((p.ra_deg() - 270.0).abs() < 1e-6);
        assert!((p.dec_deg() - (90.0 - OBLIQUITY_J2000)).abs() < 1e-9);
    }

    #[test]
    fn supergalactic_plane_contains_zero_point() {
        // SG longitude zero is at galactic (137.37, 0).
        let zero_gal = SkyPos::new(SGAL_ZERO_L, SGAL_ZERO_B).unwrap();
        let zero_eq = Frame::Galactic.to_equatorial_pos(zero_gal);
        let sg = Frame::Supergalactic.from_equatorial_pos(zero_eq);
        assert!(sg.dec_deg().abs() < 1e-6, "SGB = {}", sg.dec_deg());
        assert!(
            sg.ra_deg().min(360.0 - sg.ra_deg()) < 1e-6,
            "SGL = {}",
            sg.ra_deg()
        );
    }

    #[test]
    fn pole_vector_matches_latitude_constraint() {
        // For every frame: frame latitude of p equals
        // asin(p_eq . pole) — the linear-constraint identity the paper uses.
        let p = SkyPos::new(123.4, 12.3).unwrap();
        for frame in Frame::ALL {
            let lat = frame.from_equatorial_pos(p).dec_deg();
            let lin = p.unit_vec().dot(frame.pole()).asin().to_degrees();
            assert!((lat - lin).abs() < 1e-9, "{frame}: {lat} vs {lin}");
        }
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip(p in arb_pos()) {
            for frame in Frame::ALL {
                let q = frame.to_equatorial_pos(frame.from_equatorial_pos(p));
                prop_assert!(p.separation_deg(q) < 1e-8, "{frame}: {p} vs {q}");
            }
        }

        #[test]
        fn prop_rotation_preserves_separation(a in arb_pos(), b in arb_pos()) {
            let sep = a.separation_deg(b);
            for frame in Frame::ALL {
                let fa = frame.from_equatorial_pos(a);
                let fb = frame.from_equatorial_pos(b);
                prop_assert!((fa.separation_deg(fb) - sep).abs() < 1e-8);
            }
        }
    }
}
