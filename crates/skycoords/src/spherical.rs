//! Angular sky positions and conversions to the Cartesian representation.

use crate::angle::wrap_deg_360;
use crate::vec3::{UnitVec3, Vec3};
use crate::CoordError;

/// An angular position on the sky: right ascension and declination in
/// degrees (or longitude/latitude in a non-equatorial frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyPos {
    ra_deg: f64,
    dec_deg: f64,
}

impl SkyPos {
    /// Construct a position; `ra` is wrapped into `[0, 360)`, `dec` must be
    /// within `[-90, +90]`.
    pub fn new(ra_deg: f64, dec_deg: f64) -> Result<Self, CoordError> {
        if !ra_deg.is_finite() || !dec_deg.is_finite() {
            return Err(CoordError::NonFinite);
        }
        if !(-90.0..=90.0).contains(&dec_deg) {
            return Err(CoordError::LatitudeOutOfRange(dec_deg));
        }
        Ok(SkyPos {
            ra_deg: wrap_deg_360(ra_deg),
            dec_deg,
        })
    }

    #[inline]
    pub fn ra_deg(self) -> f64 {
        self.ra_deg
    }

    #[inline]
    pub fn dec_deg(self) -> f64 {
        self.dec_deg
    }

    /// Convert to the Cartesian unit-vector representation the archive
    /// stores ("a triplet of x,y,z values per object").
    #[inline]
    pub fn unit_vec(self) -> UnitVec3 {
        let (sin_d, cos_d) = self.dec_deg.to_radians().sin_cos();
        let (sin_r, cos_r) = self.ra_deg.to_radians().sin_cos();
        UnitVec3::new_unchecked(cos_d * cos_r, cos_d * sin_r, sin_d)
    }

    /// Convert a unit vector back to angular coordinates.
    pub fn from_unit_vec(v: UnitVec3) -> SkyPos {
        let dec = v.z().clamp(-1.0, 1.0).asin().to_degrees();
        let ra = if v.x() == 0.0 && v.y() == 0.0 {
            0.0 // at a pole the longitude is degenerate; pick 0
        } else {
            wrap_deg_360(v.y().atan2(v.x()).to_degrees())
        };
        SkyPos {
            ra_deg: ra,
            dec_deg: dec,
        }
    }

    /// Angular separation in degrees.
    #[inline]
    pub fn separation_deg(self, o: SkyPos) -> f64 {
        self.unit_vec().separation_deg(o.unit_vec())
    }

    /// Position angle of `o` as seen from `self`, degrees East of North
    /// in `[0, 360)`.
    pub fn position_angle_deg(self, o: SkyPos) -> f64 {
        let d_ra = (o.ra_deg - self.ra_deg).to_radians();
        let (sin_d1, cos_d1) = self.dec_deg.to_radians().sin_cos();
        let (sin_d2, cos_d2) = o.dec_deg.to_radians().sin_cos();
        let y = d_ra.sin() * cos_d2;
        let x = cos_d1 * sin_d2 - sin_d1 * cos_d2 * d_ra.cos();
        wrap_deg_360(y.atan2(x).to_degrees())
    }

    /// The point at angular distance `dist_deg` from `self` along position
    /// angle `pa_deg` (East of North). Used by the synthetic catalog
    /// generator to scatter cluster members around centers.
    pub fn offset_by(self, pa_deg: f64, dist_deg: f64) -> SkyPos {
        let center = self.unit_vec();
        // Local north direction at `self` (tangent toward +dec).
        let north_pole = UnitVec3::Z;
        let east = north_pole.cross(center);
        let east = match east.normalized() {
            Ok(e) => e,
            // At the poles "north" is degenerate: any direction works.
            Err(_) => center.any_orthogonal(),
        };
        let north = center
            .cross(east)
            .normalized()
            .expect("center and east are orthogonal unit vectors");
        let pa = pa_deg.to_radians();
        let dir = (north.as_vec3() * pa.cos() + east.as_vec3() * pa.sin())
            .normalized()
            .expect("unit combination of an orthonormal basis");
        let d = dist_deg.to_radians();
        let v: Vec3 = center.as_vec3() * d.cos() + dir.as_vec3() * d.sin();
        SkyPos::from_unit_vec(v.normalized().expect("unit by construction"))
    }
}

impl std::fmt::Display for SkyPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:+.6})", self.ra_deg, self.dec_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pos() -> impl Strategy<Value = SkyPos> {
        (0.0f64..360.0, -89.9f64..89.9).prop_map(|(ra, dec)| SkyPos::new(ra, dec).unwrap())
    }

    #[test]
    fn construction_validates() {
        assert!(SkyPos::new(10.0, 91.0).is_err());
        assert!(SkyPos::new(10.0, -91.0).is_err());
        assert!(SkyPos::new(f64::NAN, 0.0).is_err());
        let p = SkyPos::new(-10.0, 0.0).unwrap();
        assert!((p.ra_deg() - 350.0).abs() < 1e-12);
    }

    #[test]
    fn cardinal_directions() {
        let origin = SkyPos::new(0.0, 0.0).unwrap().unit_vec();
        assert!((origin.x() - 1.0).abs() < 1e-15);
        let pole = SkyPos::new(123.0, 90.0).unwrap().unit_vec();
        assert!((pole.z() - 1.0).abs() < 1e-15);
        let ra90 = SkyPos::new(90.0, 0.0).unwrap().unit_vec();
        assert!((ra90.y() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn pole_longitude_degenerate() {
        let p = SkyPos::from_unit_vec(UnitVec3::Z);
        assert_eq!(p.ra_deg(), 0.0);
        assert!((p.dec_deg() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn position_angle_cardinal() {
        let c = SkyPos::new(180.0, 0.0).unwrap();
        let north = SkyPos::new(180.0, 1.0).unwrap();
        let east = SkyPos::new(181.0, 0.0).unwrap();
        assert!(c.position_angle_deg(north).abs() < 1e-9);
        assert!((c.position_angle_deg(east) - 90.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_through_unit_vec(p in arb_pos()) {
            let q = SkyPos::from_unit_vec(p.unit_vec());
            prop_assert!(p.separation_deg(q) < 1e-9, "{p} vs {q}");
        }

        #[test]
        fn prop_offset_lands_at_distance(p in arb_pos(), pa in 0.0f64..360.0, d in 0.0f64..90.0) {
            let q = p.offset_by(pa, d);
            prop_assert!((p.separation_deg(q) - d).abs() < 1e-8);
        }

        #[test]
        fn prop_offset_position_angle(p in arb_pos(), pa in 0.0f64..360.0) {
            // For small offsets away from the poles the PA of the offset
            // point matches the requested PA.
            prop_assume!(p.dec_deg().abs() < 80.0);
            let q = p.offset_by(pa, 0.1);
            let measured = p.position_angle_deg(q);
            let diff = (measured - pa).abs().min((measured - pa + 360.0).abs()).min((measured - pa - 360.0).abs());
            prop_assert!(diff < 0.2, "pa={pa} measured={measured}");
        }
    }
}
