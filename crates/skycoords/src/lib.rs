//! Spherical-astronomy substrate for the SDSS archive reproduction.
//!
//! The SIGMOD 2000 SDSS paper stores angular coordinates "in a Cartesian
//! form, i.e. as a triplet of x,y,z values per object", because queries in
//! arbitrary spherical coordinate systems then become *linear* constraints
//! on the Cartesian coordinates instead of trigonometric expressions.
//!
//! This crate provides exactly that substrate:
//!
//! * [`UnitVec3`] — a unit 3-vector on the celestial sphere, the canonical
//!   position representation used by every other crate in the workspace;
//! * [`SkyPos`] — (ra, dec) angular coordinates with conversions to and
//!   from [`UnitVec3`];
//! * [`Frame`] — celestial coordinate systems (Equatorial J2000, Galactic,
//!   Supergalactic, Ecliptic) realized as rotation matrices, so that
//!   coordinates in any system "can be constructed from the Cartesian
//!   coordinates on the fly" (paper, §Indexing the Sky);
//! * angular-separation and position-angle operators needed by the
//!   proximity queries of the paper (§Typical Queries).

pub mod angle;
pub mod frames;
pub mod spherical;
pub mod vec3;

pub use angle::{Angle, ARCMIN_DEG, ARCSEC_DEG};
pub use frames::{Frame, Rotation};
pub use spherical::SkyPos;
pub use vec3::{UnitVec3, Vec3};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordError {
    /// A vector with (near-)zero length cannot be normalized onto the sphere.
    ZeroVector,
    /// Declination / latitude outside [-90, +90] degrees.
    LatitudeOutOfRange(f64),
    /// A non-finite (NaN or infinite) coordinate value.
    NonFinite,
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::ZeroVector => write!(f, "zero-length vector cannot be normalized"),
            CoordError::LatitudeOutOfRange(v) => {
                write!(f, "latitude {v} deg outside [-90, +90]")
            }
            CoordError::NonFinite => write!(f, "non-finite coordinate value"),
        }
    }
}

impl std::error::Error for CoordError {}
