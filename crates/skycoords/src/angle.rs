//! Angle arithmetic and sexagesimal formatting.
//!
//! All public archive APIs speak **degrees** (the unit astronomers use for
//! survey coordinates); radians are an internal detail. Arc-second and
//! arc-minute constants are provided because the paper's flagship queries
//! are phrased in arcseconds ("within 10 arcsec of each other").

/// One arcsecond expressed in degrees.
pub const ARCSEC_DEG: f64 = 1.0 / 3600.0;
/// One arcminute expressed in degrees.
pub const ARCMIN_DEG: f64 = 1.0 / 60.0;

/// An angle, stored in degrees.
///
/// A thin newtype so that public signatures are self-documenting and so
/// degree/radian mix-ups become type errors instead of silent bugs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle(f64);

impl Angle {
    /// Construct from degrees.
    #[inline]
    pub const fn from_degrees(deg: f64) -> Self {
        Angle(deg)
    }

    /// Construct from radians.
    #[inline]
    pub fn from_radians(rad: f64) -> Self {
        Angle(rad.to_degrees())
    }

    /// Construct from arcseconds.
    #[inline]
    pub fn from_arcsec(asec: f64) -> Self {
        Angle(asec * ARCSEC_DEG)
    }

    /// Value in degrees.
    #[inline]
    pub const fn degrees(self) -> f64 {
        self.0
    }

    /// Value in radians.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Value in arcseconds.
    #[inline]
    pub fn arcsec(self) -> f64 {
        self.0 * 3600.0
    }

    /// Normalize into `[0, 360)` degrees (for longitudes / right ascension).
    #[inline]
    pub fn wrap360(self) -> Self {
        Angle(wrap_deg_360(self.0))
    }

    /// Normalize into `[-180, 180)` degrees.
    #[inline]
    pub fn wrap180(self) -> Self {
        let mut d = wrap_deg_360(self.0);
        if d >= 180.0 {
            d -= 360.0;
        }
        Angle(d)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Angle(self.0.abs())
    }
}

impl std::ops::Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl std::ops::Mul<f64> for Angle {
    type Output = Angle;
    fn mul(self, rhs: f64) -> Angle {
        Angle(self.0 * rhs)
    }
}

impl std::fmt::Display for Angle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}\u{00b0}", self.0)
    }
}

/// Wrap a degree value into `[0, 360)`.
#[inline]
pub fn wrap_deg_360(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Format a right ascension (degrees) as sexagesimal `HH:MM:SS.sss`.
///
/// Finding charts — the paper's "simplest service" — are labelled this way.
pub fn format_hms(ra_deg: f64) -> String {
    let hours = wrap_deg_360(ra_deg) / 15.0;
    let h = hours.floor();
    let rem_min = (hours - h) * 60.0;
    let m = rem_min.floor();
    let s = (rem_min - m) * 60.0;
    // Guard against 59.9995 rounding up to 60.000 in the formatted output.
    let (h, m, s) = carry_sexagesimal(h, m, s);
    format!("{h:02.0}:{m:02.0}:{s:06.3}")
}

/// Format a declination (degrees) as sexagesimal `±DD:MM:SS.ss`.
pub fn format_dms(dec_deg: f64) -> String {
    let sign = if dec_deg < 0.0 { '-' } else { '+' };
    let a = dec_deg.abs();
    let d = a.floor();
    let rem_min = (a - d) * 60.0;
    let m = rem_min.floor();
    let s = (rem_min - m) * 60.0;
    let (d, m, s) = carry_sexagesimal(d, m, s);
    format!("{sign}{d:02.0}:{m:02.0}:{s:05.2}")
}

/// Carry seconds→minutes→units when seconds round to 60 at display precision.
fn carry_sexagesimal(mut u: f64, mut m: f64, mut s: f64) -> (f64, f64, f64) {
    if s >= 59.9995 {
        s = 0.0;
        m += 1.0;
    }
    if m >= 60.0 {
        m = 0.0;
        u += 1.0;
    }
    (u, m, s)
}

/// Parse sexagesimal `HH:MM:SS[.s]` right ascension into degrees.
pub fn parse_hms(s: &str) -> Option<f64> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return None;
    }
    let h: f64 = parts[0].trim().parse().ok()?;
    let m: f64 = parts[1].trim().parse().ok()?;
    let sec: f64 = parts[2].trim().parse().ok()?;
    if !(0.0..24.0).contains(&h) || !(0.0..60.0).contains(&m) || !(0.0..60.0).contains(&sec) {
        return None;
    }
    Some((h + m / 60.0 + sec / 3600.0) * 15.0)
}

/// Parse sexagesimal `±DD:MM:SS[.s]` declination into degrees.
pub fn parse_dms(s: &str) -> Option<f64> {
    let (sign, rest) = match s.as_bytes().first()? {
        b'-' => (-1.0, &s[1..]),
        b'+' => (1.0, &s[1..]),
        _ => (1.0, s),
    };
    let parts: Vec<&str> = rest.split(':').collect();
    if parts.len() != 3 {
        return None;
    }
    let d: f64 = parts[0].trim().parse().ok()?;
    let m: f64 = parts[1].trim().parse().ok()?;
    let sec: f64 = parts[2].trim().parse().ok()?;
    if !(0.0..=90.0).contains(&d) || !(0.0..60.0).contains(&m) || !(0.0..60.0).contains(&sec) {
        return None;
    }
    let v = sign * (d + m / 60.0 + sec / 3600.0);
    if v.abs() > 90.0 {
        return None;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcsec_constant() {
        assert!((ARCSEC_DEG * 3600.0 - 1.0).abs() < 1e-15);
        assert!((ARCMIN_DEG * 60.0 - 1.0).abs() < 1e-15);
    }

    #[test]
    fn angle_units_roundtrip() {
        let a = Angle::from_degrees(12.5);
        assert!((a.radians() - 12.5f64.to_radians()).abs() < 1e-15);
        assert!((Angle::from_radians(a.radians()).degrees() - 12.5).abs() < 1e-12);
        assert!((Angle::from_arcsec(10.0).degrees() - 10.0 / 3600.0).abs() < 1e-15);
        assert!((Angle::from_degrees(2.0).arcsec() - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn wrapping() {
        assert_eq!(wrap_deg_360(370.0), 10.0);
        assert_eq!(wrap_deg_360(-10.0), 350.0);
        assert_eq!(wrap_deg_360(0.0), 0.0);
        assert!((Angle::from_degrees(-350.0).wrap360().degrees() - 10.0).abs() < 1e-12);
        assert!((Angle::from_degrees(190.0).wrap180().degrees() + 170.0).abs() < 1e-12);
        assert!((Angle::from_degrees(170.0).wrap180().degrees() - 170.0).abs() < 1e-12);
    }

    #[test]
    fn angle_arithmetic() {
        let a = Angle::from_degrees(10.0) + Angle::from_degrees(20.0);
        assert_eq!(a.degrees(), 30.0);
        let b = Angle::from_degrees(10.0) - Angle::from_degrees(20.0);
        assert_eq!(b.degrees(), -10.0);
        assert_eq!(b.abs().degrees(), 10.0);
        assert_eq!((Angle::from_degrees(3.0) * 2.0).degrees(), 6.0);
    }

    #[test]
    fn hms_formatting_known_values() {
        // 15 deg = 1h.
        assert_eq!(format_hms(15.0), "01:00:00.000");
        // SDSS test field around RA 185.0 deg = 12h20m.
        assert_eq!(format_hms(185.0), "12:20:00.000");
        assert_eq!(format_dms(-1.25), "-01:15:00.00");
        assert_eq!(format_dms(32.5), "+32:30:00.00");
    }

    #[test]
    fn hms_parse_roundtrip() {
        for &ra in &[0.0, 15.0, 185.1234, 359.9] {
            let s = format_hms(ra);
            let back = parse_hms(&s).unwrap();
            assert!((back - ra).abs() < 1e-3, "{ra} -> {s} -> {back}");
        }
        for &dec in &[-89.5, -1.25, 0.0, 12.3456, 89.9] {
            let s = format_dms(dec);
            let back = parse_dms(&s).unwrap();
            assert!((back - dec).abs() < 1e-3, "{dec} -> {s} -> {back}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_hms("25:00:00"), None);
        assert_eq!(parse_hms("1:61:00"), None);
        assert_eq!(parse_hms("nonsense"), None);
        assert_eq!(parse_dms("+91:00:00"), None);
        assert_eq!(parse_dms(""), None);
    }

    #[test]
    fn rounding_carry() {
        // 59.99951 s must carry over to the next minute, not print "60".
        let almost = 15.0 - 1e-9;
        let s = format_hms(almost);
        assert!(!s.contains(":60"), "{s}");
    }
}
