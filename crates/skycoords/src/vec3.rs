//! 3-vectors and unit vectors on the celestial sphere.
//!
//! The archive stores every object position as a unit vector. Angular
//! constraints ("within 10 arcsec", "in this declination band") become dot
//! products against these vectors — the linear half-space constraints at the
//! heart of the paper's indexing scheme.

use crate::CoordError;

/// A general 3-vector (not necessarily normalized).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Normalize onto the unit sphere.
    #[inline]
    pub fn normalized(self) -> Result<UnitVec3, CoordError> {
        if !(self.x.is_finite() && self.y.is_finite() && self.z.is_finite()) {
            return Err(CoordError::NonFinite);
        }
        let n = self.norm();
        if n < 1e-300 {
            return Err(CoordError::ZeroVector);
        }
        Ok(UnitVec3 {
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        })
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A unit vector on the celestial sphere.
///
/// Invariant: `x² + y² + z² = 1` up to floating-point rounding. All
/// constructors preserve this; consumers may rely on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitVec3 {
    x: f64,
    y: f64,
    z: f64,
}

impl UnitVec3 {
    /// +x axis: (ra, dec) = (0, 0).
    pub const X: UnitVec3 = UnitVec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// +y axis: (ra, dec) = (90, 0).
    pub const Y: UnitVec3 = UnitVec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// +z axis: the north celestial pole.
    pub const Z: UnitVec3 = UnitVec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct without checking the invariant.
    ///
    /// Only for compile-time constants and hot paths that have already
    /// normalized; everything else should go through [`Vec3::normalized`].
    #[inline]
    pub const fn new_unchecked(x: f64, y: f64, z: f64) -> Self {
        UnitVec3 { x, y, z }
    }

    #[inline]
    pub const fn x(self) -> f64 {
        self.x
    }

    #[inline]
    pub const fn y(self) -> f64 {
        self.y
    }

    #[inline]
    pub const fn z(self) -> f64 {
        self.z
    }

    #[inline]
    pub const fn as_vec3(self) -> Vec3 {
        Vec3 {
            x: self.x,
            y: self.y,
            z: self.z,
        }
    }

    #[inline]
    pub fn dot(self, o: UnitVec3) -> f64 {
        self.as_vec3().dot(o.as_vec3())
    }

    #[inline]
    pub fn cross(self, o: UnitVec3) -> Vec3 {
        self.as_vec3().cross(o.as_vec3())
    }

    /// The antipodal direction. (Named method kept alongside the `Neg`
    /// impl because call sites read better as `pole.neg()` in half-space
    /// constructions.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn neg(self) -> UnitVec3 {
        UnitVec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Angular separation to another unit vector, in **degrees**.
    ///
    /// Uses `atan2(|u×v|, u·v)` which is numerically stable both for nearly
    /// identical and for nearly antipodal directions, unlike `acos(u·v)`.
    /// This matters: the paper's pair queries work at 5–10 arcsec scales
    /// where `acos` loses half of the available precision.
    #[inline]
    pub fn separation_deg(self, o: UnitVec3) -> f64 {
        let cross = self.cross(o).norm();
        let dot = self.dot(o);
        cross.atan2(dot).to_degrees()
    }

    /// Midpoint on the sphere (normalized chord midpoint).
    ///
    /// Errors only for antipodal inputs, whose midpoint is undefined.
    #[inline]
    pub fn midpoint(self, o: UnitVec3) -> Result<UnitVec3, CoordError> {
        (self.as_vec3() + o.as_vec3()).normalized()
    }

    /// Rotate `self` by angle `theta_deg` around axis `axis` (right-hand rule).
    pub fn rotated_about(self, axis: UnitVec3, theta_deg: f64) -> UnitVec3 {
        // Rodrigues' rotation formula.
        let t = theta_deg.to_radians();
        let (sin_t, cos_t) = t.sin_cos();
        let v = self.as_vec3();
        let k = axis.as_vec3();
        let rotated = v * cos_t + k.cross(v) * sin_t + k * (k.dot(v) * (1.0 - cos_t));
        // Rotation preserves length; re-normalize to stamp out rounding drift.
        rotated
            .normalized()
            .expect("rotation of a unit vector stays on the sphere")
    }

    /// An arbitrary unit vector orthogonal to `self`.
    pub fn any_orthogonal(self) -> UnitVec3 {
        // Cross with the axis `self` is least aligned with.
        let axis = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::new(1.0, 0.0, 0.0)
        } else if self.y.abs() <= self.z.abs() {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        self.as_vec3()
            .cross(axis)
            .normalized()
            .expect("axis chosen to be non-parallel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_unit() -> impl Strategy<Value = UnitVec3> {
        // Uniform on the sphere via z ~ U(-1,1), phi ~ U(0, 2pi).
        (-1.0f64..1.0, 0.0f64..std::f64::consts::TAU).prop_map(|(z, phi)| {
            let r = (1.0 - z * z).max(0.0).sqrt();
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
                .normalized()
                .unwrap()
        })
    }

    #[test]
    fn dot_cross_basics() {
        assert_eq!(UnitVec3::X.dot(UnitVec3::Y), 0.0);
        let c = UnitVec3::X.cross(UnitVec3::Y);
        assert!((c.z - 1.0).abs() < 1e-15);
        assert_eq!(UnitVec3::Z.dot(UnitVec3::Z), 1.0);
    }

    #[test]
    fn normalize_rejects_zero_and_nan() {
        assert_eq!(Vec3::ZERO.normalized(), Err(CoordError::ZeroVector));
        assert_eq!(
            Vec3::new(f64::NAN, 0.0, 0.0).normalized(),
            Err(CoordError::NonFinite)
        );
        assert_eq!(
            Vec3::new(f64::INFINITY, 0.0, 0.0).normalized(),
            Err(CoordError::NonFinite)
        );
    }

    #[test]
    fn separation_known_angles() {
        assert!((UnitVec3::X.separation_deg(UnitVec3::Y) - 90.0).abs() < 1e-12);
        assert!((UnitVec3::X.separation_deg(UnitVec3::X)).abs() < 1e-12);
        assert!((UnitVec3::X.separation_deg(UnitVec3::X.neg()) - 180.0).abs() < 1e-12);
    }

    #[test]
    fn separation_small_angle_precision() {
        // Two points 1 arcsec apart: atan2 formulation must resolve it.
        let a = UnitVec3::X;
        let one_arcsec = 1.0 / 3600.0;
        let b = a.rotated_about(UnitVec3::Z, one_arcsec);
        let sep = a.separation_deg(b);
        assert!(
            (sep - one_arcsec).abs() < 1e-12,
            "sep={sep}, want {one_arcsec}"
        );
    }

    #[test]
    fn midpoint_of_antipodes_fails() {
        assert!(UnitVec3::X.midpoint(UnitVec3::X.neg()).is_err());
    }

    #[test]
    fn rotation_preserves_angles() {
        let p = Vec3::new(1.0, 2.0, 3.0).normalized().unwrap();
        let q = p.rotated_about(UnitVec3::Z, 90.0);
        assert!((p.separation_deg(q) - p.z().acos().to_degrees().min(90.0)).abs() < 90.0);
        // Rotating around itself is identity.
        let r = p.rotated_about(p, 123.0);
        assert!(p.separation_deg(r) < 1e-10);
    }

    proptest! {
        #[test]
        fn prop_normalized_has_unit_length(v in arb_unit()) {
            prop_assert!((v.as_vec3().norm() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_separation_symmetric(a in arb_unit(), b in arb_unit()) {
            let d1 = a.separation_deg(b);
            let d2 = b.separation_deg(a);
            prop_assert!((d1 - d2).abs() < 1e-10);
            prop_assert!((0.0..=180.0 + 1e-9).contains(&d1));
        }

        #[test]
        fn prop_triangle_inequality(a in arb_unit(), b in arb_unit(), c in arb_unit()) {
            let ab = a.separation_deg(b);
            let bc = b.separation_deg(c);
            let ac = a.separation_deg(c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn prop_midpoint_equidistant(a in arb_unit(), b in arb_unit()) {
            prop_assume!(a.separation_deg(b) < 179.0);
            let m = a.midpoint(b).unwrap();
            let da = m.separation_deg(a);
            let db = m.separation_deg(b);
            prop_assert!((da - db).abs() < 1e-9, "da={da} db={db}");
        }

        #[test]
        fn prop_orthogonal_is_orthogonal(a in arb_unit()) {
            let o = a.any_orthogonal();
            prop_assert!(a.dot(o).abs() < 1e-12);
        }

        #[test]
        fn prop_rotation_preserves_separation(a in arb_unit(), b in arb_unit(), axis in arb_unit(), theta in -360.0f64..360.0) {
            let before = a.separation_deg(b);
            let after = a.rotated_about(axis, theta).separation_deg(b.rotated_about(axis, theta));
            prop_assert!((before - after).abs() < 1e-9);
        }
    }
}
