//! The two-phase clustered loader and its naive baseline.
//!
//! Paper, §Data Loading: "Data loading might bottleneck on creating the
//! clustering units — databases and containers — that hold the objects.
//! Our load design minimizes disk accesses, touching each clustering unit
//! at most once during a load. The chunk data is first examined to
//! construct an index. This determines where each object will be located
//! and creates a list of databases and containers that are needed. Then
//! data is inserted into the containers in a single pass over the data
//! objects."
//!
//! [`load_clustered`] is that algorithm; [`load_naive`] inserts in
//! arrival order (touching a container per object) and is the E9
//! baseline. Container write-touches come from the store's own counters,
//! so the comparison measures the real storage path.

use crate::chunk::Chunk;
use crate::LoaderError;
use sdss_storage::ObjectStore;
use std::time::{Duration, Instant};

/// Report of one chunk load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub objects: usize,
    pub bytes: usize,
    /// Container write-touches incurred by this load.
    pub container_touches: u64,
    /// Distinct containers that received objects.
    pub containers_written: usize,
    pub wall: Duration,
}

impl LoadReport {
    pub fn objects_per_sec(&self) -> f64 {
        self.objects as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    pub fn mbps(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Touches per distinct container — 1.0 is the paper's "at most once".
    pub fn touches_per_container(&self) -> f64 {
        self.container_touches as f64 / self.containers_written.max(1) as f64
    }
}

/// Phase 1 + 2 of the paper's loader: group the chunk by destination
/// container (the "index"), then insert each group in one pass.
pub fn load_clustered(store: &mut ObjectStore, chunk: &Chunk) -> Result<LoadReport, LoaderError> {
    let start = Instant::now();
    let before = container_set(store);
    let touches_before = store.touches().snapshot().0;

    // Phase 1: examine the data, build the index (objects stay in place;
    // insert_batch groups by container internally — it *is* the index).
    let objects: Vec<_> = chunk.objects().cloned().collect();

    // Phase 2: single pass per container.
    store.insert_batch(&objects)?;

    let touches = store.touches().snapshot().0 - touches_before;
    let after = container_set(store);
    Ok(LoadReport {
        objects: objects.len(),
        bytes: chunk.bytes(),
        container_touches: touches,
        containers_written: written(&before, &after, store, &objects),
        wall: start.elapsed(),
    })
}

/// The baseline: insert objects one by one in arrival (observation)
/// order — every object opens its container again.
pub fn load_naive(store: &mut ObjectStore, chunk: &Chunk) -> Result<LoadReport, LoaderError> {
    let start = Instant::now();
    let before = container_set(store);
    let touches_before = store.touches().snapshot().0;

    let mut n = 0usize;
    for obj in chunk.objects() {
        store.insert(obj)?;
        n += 1;
    }

    let touches = store.touches().snapshot().0 - touches_before;
    let after = container_set(store);
    let objects: Vec<_> = chunk.objects().cloned().collect();
    Ok(LoadReport {
        objects: n,
        bytes: chunk.bytes(),
        container_touches: touches,
        containers_written: written(&before, &after, store, &objects),
        wall: start.elapsed(),
    })
}

fn container_set(store: &ObjectStore) -> std::collections::BTreeSet<u64> {
    store.containers().map(|c| c.id().raw()).collect()
}

/// Count the distinct containers this load wrote to (new ones plus any
/// pre-existing container one of the loaded objects maps to).
fn written(
    before: &std::collections::BTreeSet<u64>,
    after: &std::collections::BTreeSet<u64>,
    store: &ObjectStore,
    objects: &[sdss_catalog::PhotoObj],
) -> usize {
    let mut set: std::collections::BTreeSet<u64> = after.difference(before).copied().collect();
    for o in objects {
        if let Ok(cid) = store.container_id_of(o) {
            if before.contains(&cid.raw()) {
                set.insert(cid.raw());
            }
        }
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunks_from_catalog;
    use sdss_catalog::SkyModel;
    use sdss_storage::StoreConfig;

    fn chunked_sky(seed: u64, nights: u32) -> Vec<Chunk> {
        let objs = SkyModel::small(seed).generate().unwrap();
        chunks_from_catalog(objs, nights).unwrap()
    }

    fn fresh_store() -> ObjectStore {
        ObjectStore::new(StoreConfig::default()).unwrap()
    }

    #[test]
    fn clustered_load_touches_each_container_once() {
        let chunks = chunked_sky(1, 1);
        let mut store = fresh_store();
        let report = load_clustered(&mut store, &chunks[0]).unwrap();
        assert_eq!(report.objects, chunks[0].n_objects());
        // The paper's property: one touch per clustering unit.
        assert!(
            (report.touches_per_container() - 1.0).abs() < 1e-9,
            "clustered load touched {:.2}x per container",
            report.touches_per_container()
        );
        assert_eq!(report.container_touches as usize, report.containers_written);
    }

    #[test]
    fn naive_load_touches_much_more() {
        let chunks = chunked_sky(2, 1);
        let mut a = fresh_store();
        let mut b = fresh_store();
        let clustered = load_clustered(&mut a, &chunks[0]).unwrap();
        let naive = load_naive(&mut b, &chunks[0]).unwrap();
        // Same data lands in both stores.
        assert_eq!(a.len(), b.len());
        assert_eq!(naive.container_touches as usize, naive.objects);
        assert!(
            naive.container_touches > clustered.container_touches * 10,
            "naive {} vs clustered {}",
            naive.container_touches,
            clustered.container_touches
        );
    }

    #[test]
    fn loads_produce_identical_stores() {
        let chunks = chunked_sky(3, 2);
        let mut a = fresh_store();
        let mut b = fresh_store();
        for c in &chunks {
            load_clustered(&mut a, c).unwrap();
            load_naive(&mut b, c).unwrap();
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_containers(), b.num_containers());
        // Same objects retrievable from both.
        let mut ids_a: Vec<u64> = a.iter_all().map(|o| o.obj_id).collect();
        let mut ids_b: Vec<u64> = b.iter_all().map(|o| o.obj_id).collect();
        ids_a.sort_unstable();
        ids_b.sort_unstable();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn incremental_nightly_loads_accumulate() {
        let chunks = chunked_sky(4, 4);
        let mut store = fresh_store();
        let mut total = 0usize;
        for c in &chunks {
            let r = load_clustered(&mut store, c).unwrap();
            total += r.objects;
            assert_eq!(store.len(), total);
            // Touch-once holds per chunk even when containers already
            // exist from earlier nights.
            assert!((r.touches_per_container() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_rates_are_positive() {
        let chunks = chunked_sky(5, 1);
        let mut store = fresh_store();
        let r = load_clustered(&mut store, &chunks[0]).unwrap();
        assert!(r.objects_per_sec() > 0.0);
        assert!(r.mbps() > 0.0);
    }
}
