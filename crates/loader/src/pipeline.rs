//! Multi-night ingest simulation: the 20 GB/day feasibility check.
//!
//! Paper: "Efficiency is important, since about 20 GB will be arriving
//! daily." The pipeline loads one chunk per simulated night with the
//! clustered loader and extrapolates the measured object rate to the
//! paper's daily volume.

use crate::chunk::{chunks_from_catalog, DriftScanCamera};
use crate::load::{load_clustered, LoadReport};
use crate::LoaderError;
use sdss_catalog::{PhotoObj, SkyModel};
use sdss_storage::ObjectStore;

/// The nightly ingest pipeline.
pub struct IngestPipeline {
    pub camera: DriftScanCamera,
    /// The paper's daily catalog arrival volume, bytes.
    pub daily_bytes: f64,
}

impl Default for IngestPipeline {
    fn default() -> Self {
        IngestPipeline {
            camera: DriftScanCamera::default(),
            daily_bytes: 20e9,
        }
    }
}

/// Aggregate report over all nights.
#[derive(Debug, Clone)]
pub struct IngestReport {
    pub nights: usize,
    pub per_night: Vec<LoadReport>,
    pub total_objects: usize,
    pub total_bytes: usize,
}

impl IngestReport {
    /// Measured sustained load rate, bytes/second.
    pub fn sustained_bps(&self) -> f64 {
        let secs: f64 = self.per_night.iter().map(|r| r.wall.as_secs_f64()).sum();
        self.total_bytes as f64 / secs.max(1e-9)
    }

    /// Hours needed to load one paper-scale day (20 GB) at the measured
    /// rate — the feasibility number (must be « 24h).
    pub fn hours_for_daily_volume(&self, daily_bytes: f64) -> f64 {
        daily_bytes / self.sustained_bps() / 3600.0
    }
}

impl IngestPipeline {
    /// Generate a sky, split it into `nights` chunks and load them all.
    pub fn run(
        &self,
        model: &SkyModel,
        store: &mut ObjectStore,
        nights: u32,
    ) -> Result<IngestReport, LoaderError> {
        let objs: Vec<PhotoObj> = model
            .generate()
            .map_err(|e| LoaderError::InvalidChunk(e.to_string()))?;
        let chunks = chunks_from_catalog(objs, nights)?;
        let mut per_night = Vec::with_capacity(chunks.len());
        let mut total_objects = 0usize;
        let mut total_bytes = 0usize;
        for chunk in &chunks {
            let r = load_clustered(store, chunk)?;
            total_objects += r.objects;
            total_bytes += r.bytes;
            per_night.push(r);
        }
        Ok(IngestReport {
            nights: per_night.len(),
            per_night,
            total_objects,
            total_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_storage::StoreConfig;

    #[test]
    fn pipeline_loads_everything() {
        let pipeline = IngestPipeline::default();
        let model = SkyModel::small(1);
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        let report = pipeline.run(&model, &mut store, 5).unwrap();
        assert_eq!(report.total_objects, model.total());
        assert_eq!(store.len(), model.total());
        assert!(report.nights <= 5 && report.nights > 0);
    }

    #[test]
    fn daily_volume_is_feasible() {
        // The core claim: at the measured load rate, 20 GB/day takes far
        // less than a day.
        let pipeline = IngestPipeline::default();
        let model = SkyModel::small(2);
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        let report = pipeline.run(&model, &mut store, 3).unwrap();
        let hours = report.hours_for_daily_volume(pipeline.daily_bytes);
        assert!(
            hours < 24.0,
            "loading a 20 GB day would take {hours:.1} h at the measured rate"
        );
    }

    #[test]
    fn touch_once_holds_across_the_pipeline() {
        let pipeline = IngestPipeline::default();
        let model = SkyModel::small(3);
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        let report = pipeline.run(&model, &mut store, 4).unwrap();
        for (i, r) in report.per_night.iter().enumerate() {
            assert!(
                (r.touches_per_container() - 1.0).abs() < 1e-9,
                "night {i} touched {:.2}x per container",
                r.touches_per_container()
            );
        }
    }

    #[test]
    fn camera_feeds_realistic_nightly_bytes() {
        let pipeline = IngestPipeline::default();
        // A 10-hour winter night of drift scanning ≈ 290 GB raw; the
        // paper's 20 GB/day of catalog arrival is ~7% of that, consistent
        // with catalog << pixels.
        let raw = pipeline.camera.bytes_per_night(10.0);
        assert!(raw > 100e9 && raw < 500e9, "raw/night = {raw:.2e}");
        assert!(pipeline.daily_bytes < raw);
    }
}
