//! # Bulk loading: observation-ordered chunks into clustered containers
//!
//! The paper's §Data Loading:
//!
//! > "Datasets are sent in coherent chunks. A chunk consists of several
//! > segments of the sky that were scanned in a single night [...] The
//! > incoming data are organized by how the observations were taken. In
//! > the Science Archive they will be inserted into the hierarchy of
//! > containers as defined by the multidimensional spatial index [...]
//! > Our load design minimizes disk accesses, touching each clustering
//! > unit at most once during a load. The chunk data is first examined to
//! > construct an index. [...] Then data is inserted into the containers
//! > in a single pass over the data objects."
//!
//! * [`chunk`] — one night's drift-scan output: segments of a stripe in
//!   observation (time) order, including the camera-rate model of
//!   Figure 1 (120 Mpixel × 0.4″ pixels ⇒ 8 MB/s)
//! * [`load`] — the two-phase clustered loader and the naive
//!   arrival-order baseline it is measured against (experiment E9)
//! * [`pipeline`] — multi-night ingest simulation (20 GB/day feasibility)

pub mod chunk;
pub mod load;
pub mod pipeline;

pub use chunk::{Chunk, DriftScanCamera, Segment};
pub use load::{load_clustered, load_naive, LoadReport};
pub use pipeline::{IngestPipeline, IngestReport};

/// Errors produced by the loader crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderError {
    /// Invalid chunk geometry or parameters.
    InvalidChunk(String),
    /// Underlying storage failure.
    Storage(String),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::InvalidChunk(m) => write!(f, "invalid chunk: {m}"),
            LoaderError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for LoaderError {}

impl From<sdss_storage::StorageError> for LoaderError {
    fn from(e: sdss_storage::StorageError) -> Self {
        LoaderError::Storage(e.to_string())
    }
}
