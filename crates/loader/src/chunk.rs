//! Observation-ordered chunks and the drift-scan camera model.
//!
//! Paper: "Datasets are sent in coherent chunks. A chunk consists of
//! several segments of the sky that were scanned in a single night, with
//! all the fields and all objects detected in the fields." And Figure 1:
//! the camera's "120 million pixels" produce "8 Megabytes per second".
//!
//! A [`Chunk`] carries objects in *time* order (along the scan stripe),
//! which is exactly not container order — the tension the two-phase
//! loader resolves.

use crate::LoaderError;
use sdss_catalog::PhotoObj;

/// One contiguous scan segment of a night.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Segment sequence number within the night.
    pub seq: u32,
    /// Objects in scan (time) order.
    pub objects: Vec<PhotoObj>,
}

/// One night's data chunk.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Night number since survey start.
    pub night: u32,
    pub segments: Vec<Segment>,
}

impl Chunk {
    pub fn n_objects(&self) -> usize {
        self.segments.iter().map(|s| s.objects.len()).sum()
    }

    /// Raw catalog bytes of the chunk.
    pub fn bytes(&self) -> usize {
        self.n_objects() * PhotoObj::SERIALIZED_LEN
    }

    /// All objects in observation order.
    pub fn objects(&self) -> impl Iterator<Item = &PhotoObj> {
        self.segments.iter().flat_map(|s| s.objects.iter())
    }
}

/// Split a generated catalog into nightly chunks in observation order:
/// the sky is scanned in RA stripes, one (or a few) per night, objects
/// ordered by RA along the stripe (drift scanning).
pub fn chunks_from_catalog(
    mut objs: Vec<PhotoObj>,
    n_nights: u32,
) -> Result<Vec<Chunk>, LoaderError> {
    if n_nights == 0 {
        return Err(LoaderError::InvalidChunk("zero nights".into()));
    }
    if objs.is_empty() {
        return Ok(Vec::new());
    }
    // Stripes: equal-dec bands; one stripe per night, round-robin.
    let dec_min = objs.iter().map(|o| o.dec_deg).fold(f64::INFINITY, f64::min);
    let dec_max = objs
        .iter()
        .map(|o| o.dec_deg)
        .fold(f64::NEG_INFINITY, f64::max);
    let height = ((dec_max - dec_min) / n_nights as f64).max(1e-9);

    // Stable assignment of each object to a stripe.
    let stripe_of = |o: &PhotoObj| -> u32 {
        (((o.dec_deg - dec_min) / height).floor() as i64).clamp(0, n_nights as i64 - 1) as u32
    };
    // Scan order within a stripe: by RA (the drift direction), then dec.
    objs.sort_by(|a, b| {
        stripe_of(a)
            .cmp(&stripe_of(b))
            .then(a.ra_deg.total_cmp(&b.ra_deg))
            .then(a.dec_deg.total_cmp(&b.dec_deg))
    });

    let mut chunks: Vec<Chunk> = (0..n_nights)
        .map(|night| Chunk {
            night,
            segments: Vec::new(),
        })
        .collect();
    // Segments: split each night's scan into ~6 camcol-like lanes by
    // position order (keeps segments coherent).
    for (night, chunk) in chunks.iter_mut().enumerate() {
        let night_objs: Vec<PhotoObj> = objs
            .iter()
            .filter(|o| stripe_of(o) == night as u32)
            .cloned()
            .collect();
        let seg_len = night_objs.len().div_ceil(6).max(1);
        for (seq, part) in night_objs.chunks(seg_len).enumerate() {
            chunk.segments.push(Segment {
                seq: seq as u32,
                objects: part.to_vec(),
            });
        }
    }
    chunks.retain(|c| c.n_objects() > 0);
    Ok(chunks)
}

/// The Figure 1 camera model: pixel count and data rate.
#[derive(Debug, Clone, Copy)]
pub struct DriftScanCamera {
    /// Imaging CCDs (30 × 2048 × 2048 in the real camera).
    pub n_imaging_ccds: u32,
    /// Astrometric CCDs — the paper's "22 Astrometric CCDs"; they stream
    /// rows at the same drift rate and count toward the camera data rate.
    pub n_astrometric_ccds: u32,
    /// Focus CCDs ("2 Focus CCDs").
    pub n_focus_ccds: u32,
    pub ccd_width: u32,
    pub ccd_height: u32,
    /// Bytes per pixel sample.
    pub bytes_per_pixel: u32,
    /// Effective exposure per pixel column, seconds (drift-scan TDI).
    pub exposure_s: f64,
}

impl Default for DriftScanCamera {
    fn default() -> Self {
        DriftScanCamera {
            n_imaging_ccds: 30,
            n_astrometric_ccds: 22,
            n_focus_ccds: 2,
            ccd_width: 2048,
            ccd_height: 2048,
            bytes_per_pixel: 2,
            exposure_s: 55.0,
        }
    }
}

impl DriftScanCamera {
    /// Total imaging pixels (the paper's "120 million pixels").
    pub fn total_pixels(&self) -> u64 {
        self.n_imaging_ccds as u64 * self.ccd_width as u64 * self.ccd_height as u64
    }

    /// Sustained data rate in bytes/second.
    ///
    /// In drift scanning every CCD clocks rows at the sidereal drift rate
    /// (`ccd_height / exposure` rows/s ≈ 37 rows/s); all 54 CCDs —
    /// imaging, astrometric and focus — stream simultaneously, which is
    /// how 120 Mpixel of imaging silicon produce the paper's 8 MB/s.
    pub fn data_rate_bps(&self) -> f64 {
        let rows_per_sec = self.ccd_height as f64 / self.exposure_s;
        let all_ccds = (self.n_imaging_ccds + self.n_astrometric_ccds + self.n_focus_ccds) as f64;
        all_ccds * self.ccd_width as f64 * rows_per_sec * self.bytes_per_pixel as f64
    }

    /// Bytes produced by `hours` of scanning.
    pub fn bytes_per_night(&self, hours: f64) -> f64 {
        self.data_rate_bps() * hours * 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;

    #[test]
    fn camera_matches_paper_figures() {
        let cam = DriftScanCamera::default();
        // "the 5x6 CCD array contains 120 million pixels"
        assert!((cam.total_pixels() as f64 - 1.2e8).abs() / 1.2e8 < 0.1);
        // "The data rate from the 120 million pixels of this camera is
        // 8 Megabytes per second"
        let mbps = cam.data_rate_bps() / 1e6;
        assert!((mbps - 8.0).abs() < 2.0, "data rate {mbps:.1} MB/s");
    }

    #[test]
    fn chunks_partition_the_catalog() {
        let objs = SkyModel::small(1).generate().unwrap();
        let chunks = chunks_from_catalog(objs.clone(), 5).unwrap();
        let total: usize = chunks.iter().map(Chunk::n_objects).sum();
        assert_eq!(total, objs.len());
        // Every object id appears exactly once.
        let mut ids: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.objects().map(|o| o.obj_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), objs.len());
    }

    #[test]
    fn chunks_are_in_scan_order() {
        let objs = SkyModel::small(2).generate().unwrap();
        let chunks = chunks_from_catalog(objs, 3).unwrap();
        for chunk in &chunks {
            // Within a segment RA must be non-decreasing (drift order).
            for seg in &chunk.segments {
                for w in seg.objects.windows(2) {
                    assert!(
                        w[0].ra_deg <= w[1].ra_deg + 1e-9,
                        "night {} seg {} out of scan order",
                        chunk.night,
                        seg.seq
                    );
                }
            }
        }
    }

    #[test]
    fn observation_order_is_not_container_order() {
        // The whole point of the loader: scan order crosses containers.
        let objs = SkyModel::small(3).generate().unwrap();
        let chunks = chunks_from_catalog(objs, 2).unwrap();
        let level = 6u8;
        let mut switches = 0usize;
        let mut total = 0usize;
        for chunk in &chunks {
            let mut prev: Option<u64> = None;
            for o in chunk.objects() {
                let cid = sdss_htm::HtmId::from_raw(o.htm20)
                    .unwrap()
                    .ancestor_at(level)
                    .raw();
                if prev != Some(cid) {
                    switches += 1;
                }
                prev = Some(cid);
                total += 1;
            }
        }
        // Many container switches per chunk — the naive loader would
        // touch containers roughly this many times.
        assert!(
            switches > total / 20,
            "only {switches} switches in {total} objects"
        );
    }

    #[test]
    fn zero_nights_rejected_and_empty_ok() {
        assert!(chunks_from_catalog(Vec::new(), 0).is_err());
        assert!(chunks_from_catalog(Vec::new(), 3).unwrap().is_empty());
    }

    #[test]
    fn chunk_byte_accounting() {
        let objs = SkyModel::small(4).generate().unwrap();
        let n = objs.len();
        let chunks = chunks_from_catalog(objs, 1).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].bytes(), n * PhotoObj::SERIALIZED_LEN);
    }
}
