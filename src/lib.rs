//! # sdss — multi-terabyte astronomy archive engine
//!
//! A from-scratch Rust reproduction of *"Designing and Mining
//! Multi-Terabyte Astronomy Archives: The Sloan Digital Sky Survey"*
//! (Szalay, Kunszt, Thakar & Gray, SIGMOD 2000).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`coords`] | spherical geometry, celestial frames, Cartesian sky vectors |
//! | [`htm`] | the Hierarchical Triangular Mesh index and region covers |
//! | [`catalog`] | photometric/tag/spectroscopic records, sky generator, FITS, schema |
//! | [`storage`] | container-clustered object store, vertical partition, sampling |
//! | [`query`] | SQL-ish parser, Query Execution Trees, ASAP-push execution |
//! | [`dataflow`] | scan machine, hash machine, river over a simulated cluster |
//! | [`loader`] | chunked two-phase clustered bulk loading |
//! | [`archive`] | Figure-2 archive network simulation and the data pump |
//!
//! ## Quickstart
//!
//! ```
//! use sdss::catalog::SkyModel;
//! use sdss::query::Archive;
//! use sdss::storage::{ObjectStore, StoreConfig, TagStore};
//! use std::sync::Arc;
//!
//! // 1. A reproducible synthetic sky (stands in for the telescope).
//! let objs = SkyModel::small(7).generate().unwrap();
//!
//! // 2. Load it into the container-clustered store + tag partition.
//! let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
//! store.insert_batch(&objs).unwrap();
//! let tags = TagStore::from_store(&store);
//!
//! // 3. Ask the archive a question. The `Archive` handle is shared and
//! //    thread-safe: clone it across as many client threads as you like.
//! let archive = Archive::new(store, Some(Arc::new(tags)));
//! let stmt = archive
//!     .prepare("SELECT ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < $1 LIMIT 5")
//!     .unwrap();
//! let out = stmt.run_with(&[21.0]).unwrap(); // bind $1; re-run freely
//! assert!(out.rows.len() <= 5);
//! ```

pub use sdss_archive_sim as archive;
pub use sdss_catalog as catalog;
pub use sdss_dataflow as dataflow;
pub use sdss_htm as htm;
pub use sdss_loader as loader;
pub use sdss_query as query;
pub use sdss_skycoords as coords;
pub use sdss_storage as storage;
