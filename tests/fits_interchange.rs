//! Integration: query results exported as blocked FITS streams round-trip
//! losslessly back into tag records.

use sdss::catalog::fits::{read_packets, tag_columns, tag_row, BlockedFitsStream, Cell};
use sdss::catalog::{ObjClass, SkyModel, TagObject};
use sdss::htm::Region;
use sdss::storage::{ObjectStore, StoreConfig, TagStore};

#[test]
fn query_to_fits_roundtrip() {
    let objs = SkyModel::small(201).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);

    let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
    let (rows, _) = tags.query_region(&domain, None).unwrap();
    assert!(!rows.is_empty());

    // Export.
    let mut sink: Vec<u8> = Vec::new();
    let mut stream = BlockedFitsStream::new(&mut sink, tag_columns(), 50);
    for t in &rows {
        stream.push_row(tag_row(t)).unwrap();
    }
    let (_, packets) = stream.finish().unwrap();
    assert_eq!(packets, rows.len().div_ceil(50));

    // Re-import and compare field by field.
    let tables = read_packets(&sink).unwrap();
    let mut back: Vec<(u64, f64, f64, f32, i32)> = Vec::new();
    for table in &tables {
        for row in &table.rows {
            let objid = match row[0] {
                Cell::I64(v) => v as u64,
                ref other => panic!("{other:?}"),
            };
            let ra = match row[1] {
                Cell::F64(v) => v,
                ref other => panic!("{other:?}"),
            };
            let dec = match row[2] {
                Cell::F64(v) => v,
                ref other => panic!("{other:?}"),
            };
            let mag_r = match row[5] {
                Cell::F32(v) => v,
                ref other => panic!("{other:?}"),
            };
            let class = match row[9] {
                Cell::I32(v) => v,
                ref other => panic!("{other:?}"),
            };
            back.push((objid, ra, dec, mag_r, class));
        }
    }
    assert_eq!(back.len(), rows.len());
    for (orig, got) in rows.iter().zip(back.iter()) {
        assert_eq!(orig.obj_id, got.0);
        assert!((orig.pos().ra_deg() - got.1).abs() < 1e-12);
        assert!((orig.pos().dec_deg() - got.2).abs() < 1e-12);
        assert_eq!(orig.mags[2], got.3);
        assert_eq!(orig.class as i32, got.4);
    }
}

#[test]
fn fits_streams_different_classes() {
    // Stream only quasars; classes must survive the round trip.
    let objs = SkyModel::small(202).generate().unwrap();
    let quasars: Vec<TagObject> = objs
        .iter()
        .map(TagObject::from_photo)
        .filter(|t| t.class == ObjClass::Quasar)
        .collect();
    assert!(!quasars.is_empty());
    let mut sink: Vec<u8> = Vec::new();
    let mut stream = BlockedFitsStream::new(&mut sink, tag_columns(), 1000);
    for t in &quasars {
        stream.push_row(tag_row(t)).unwrap();
    }
    stream.finish().unwrap();
    let tables = read_packets(&sink).unwrap();
    for table in &tables {
        for row in &table.rows {
            match row[9] {
                Cell::I32(c) => assert_eq!(c, ObjClass::Quasar as i32),
                ref other => panic!("{other:?}"),
            }
        }
    }
}
