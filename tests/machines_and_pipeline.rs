//! Integration: continuous scan + batch scheduler + river + archive
//! replication working together, and the data pump accounting.

use sdss::archive::{ArchiveNetwork, DataPump};
use sdss::catalog::{ObjClass, SkyModel, TagObject};
use sdss::dataflow::{
    BatchScheduler, JobClass, JobState, ObjPredicate, RiverGraph, ScanMachine, SimCluster,
};
use sdss::storage::{CostModel, ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

#[test]
fn continuous_scan_serves_overlapping_queries() {
    let objs = SkyModel::small(301).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let cluster = SimCluster::from_store(&store, 3).unwrap();
    let machine = ScanMachine::new(&cluster).unwrap();
    let scan = machine.continuous();

    let preds: Vec<(ObjPredicate, usize)> = vec![
        (
            Arc::new(|o: &sdss::catalog::PhotoObj| o.class == ObjClass::Galaxy),
            objs.iter().filter(|o| o.class == ObjClass::Galaxy).count(),
        ),
        (
            Arc::new(|o: &sdss::catalog::PhotoObj| o.mag(2) < 20.0),
            objs.iter().filter(|o| o.mag(2) < 20.0).count(),
        ),
        (
            Arc::new(|o: &sdss::catalog::PhotoObj| o.color_ug() < 0.5),
            objs.iter().filter(|o| o.color_ug() < 0.5).count(),
        ),
    ];
    // Attach all three; they share the same sweep.
    let receivers: Vec<_> = preds.iter().map(|(p, _)| scan.attach(p.clone())).collect();
    for (rx, (_, want)) in receivers.into_iter().zip(preds.iter()) {
        assert_eq!(rx.iter().count(), *want);
    }
    scan.shutdown();
}

#[test]
fn scheduler_drives_machine_jobs() {
    let objs = SkyModel::small(302).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();

    // Cost model feeds the scheduler's estimates.
    let model = CostModel::default();
    let domain = sdss::htm::Region::circle(185.0, 15.0, 2.0).unwrap();
    let est = model.estimate(&store, &domain).unwrap();

    let mut sched = BatchScheduler::new(1);
    let lens_job = sched.submit("lens pairs", JobClass::Batch, est.est_seconds);
    let cone_job = sched.submit("cone query", JobClass::Interactive, est.est_seconds);

    // Interactive dispatches first even though it was submitted later.
    let first = sched.dispatch().unwrap().id;
    assert_eq!(first, cone_job);
    sched.complete(cone_job);
    let second = sched.dispatch().unwrap().id;
    assert_eq!(second, lens_job);

    // Run the batch job for real: a river over the tag partition.
    let tags_store = TagStore::from_store(&store);
    let mut all_tags: Vec<TagObject> = Vec::new();
    tags_store.scan_all(|t| all_tags.push(*t));
    let river = RiverGraph::new(3)
        .unwrap()
        .filter(|t| t.class == ObjClass::Galaxy)
        .sort_by(|t| t.mags[2] as f64);
    let (sorted, report) = river.run(&all_tags).unwrap();
    assert_eq!(report.records_in, all_tags.len());
    assert!(sorted.windows(2).all(|w| w[0].mags[2] <= w[1].mags[2]));
    sched.complete(lens_job);
    assert_eq!(sched.state_of(lens_job), Some(JobState::Done));
}

#[test]
fn pump_shares_sweeps_and_network_delivers() {
    let mut pump = DataPump::new(400_000_000_000); // the 400 GB catalog
    pump.submit("proper-motion sweep", 1.0);
    pump.submit("variability sweep", 1.0);
    pump.submit("color-outlier sweep", 0.8);
    let round = pump.run_round().unwrap();
    assert_eq!(round.queries_served, 3);
    assert!(round.sharing_factor() > 2.0);

    let mut net = ArchiveNetwork::sdss_default(1, 1);
    net.run(5);
    // Everything eventually lands everywhere.
    for (_, count) in net.holdings_summary() {
        assert_eq!(count, 5);
    }
}

#[test]
fn partition_and_cluster_line_up() {
    let objs = SkyModel::small(303).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let pm = sdss::storage::PartitionMap::build(&store, 4).unwrap();
    let cluster = SimCluster::from_store(&store, 4).unwrap();
    // Node byte counts must match the partition map exactly.
    for node in 0..4 {
        assert_eq!(
            cluster.node_stats(node).bytes,
            pm.server_bytes()[node],
            "node {node}"
        );
    }
}
