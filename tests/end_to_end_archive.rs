//! End-to-end integration: generate → chunk → load → query through every
//! access path, all paths agreeing with brute force over the generator
//! output.

use sdss::catalog::{ObjClass, PhotoObj, SkyModel, TagObject};
use sdss::dataflow::{ObjPredicate, ScanMachine, SimCluster};
use sdss::htm::Region;
use sdss::loader::{chunk::chunks_from_catalog, load_clustered};
use sdss::query::{Archive, RouteChoice};
use sdss::storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

fn build_archive(seed: u64) -> (Arc<ObjectStore>, Arc<TagStore>, Vec<PhotoObj>) {
    let objs = SkyModel::small(seed).generate().expect("valid model");
    let chunks = chunks_from_catalog(objs.clone(), 3).expect("chunking");
    let mut store = ObjectStore::new(StoreConfig::default()).expect("store");
    for c in &chunks {
        load_clustered(&mut store, c).expect("load");
    }
    let tags = TagStore::from_store(&store);
    (Arc::new(store), Arc::new(tags), objs)
}

#[test]
fn loaded_archive_contains_exactly_the_catalog() {
    let (store, tags, objs) = build_archive(101);
    assert_eq!(store.len(), objs.len());
    assert_eq!(tags.len(), objs.len());
    // Every object retrievable by id, bit-identical.
    for obj in objs.iter().step_by(111) {
        assert_eq!(&store.get(obj.obj_id).unwrap(), obj);
    }
}

#[test]
fn all_access_paths_agree() {
    let (store, tags, objs) = build_archive(102);

    // Ground truth: brute force over the generator output.
    let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
    let mut want: Vec<u64> = objs
        .iter()
        .filter(|o| domain.contains(o.unit_vec()) && o.mag(2) < 21.0)
        .map(|o| o.obj_id)
        .collect();
    want.sort_unstable();

    // Path 1: storage region scan + manual filter.
    let mut p1: Vec<u64> = Vec::new();
    store
        .scan_region(&domain, None, |o| {
            if o.mag(2) < 21.0 {
                p1.push(o.obj_id);
            }
        })
        .unwrap();
    p1.sort_unstable();
    assert_eq!(p1, want, "direct region scan");

    // Path 2: the archive query API (tag route).
    let archive = Archive::new(store.clone(), Some(tags.clone()));
    let out = archive
        .run("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < 21")
        .unwrap();
    assert_eq!(out.stats.route, RouteChoice::TagOnly);
    let mut p2: Vec<u64> = out.rows.iter().map(|r| r[0].as_id().unwrap()).collect();
    p2.sort_unstable();
    assert_eq!(p2, want, "query engine");

    // Path 3: the scan machine over a 4-node cluster.
    let cluster = SimCluster::from_store(&store, 4).unwrap();
    let machine = ScanMachine::new(&cluster).unwrap();
    let dom = domain.clone();
    let pred: ObjPredicate = Arc::new(move |o| dom.contains(o.unit_vec()) && o.mag(2) < 21.0);
    let mut p3 = Vec::new();
    machine.run_query(pred, |o| p3.push(o.obj_id)).unwrap();
    p3.sort_unstable();
    assert_eq!(p3, want, "scan machine");
}

#[test]
fn sql_class_counts_match_generator() {
    let (store, tags, objs) = build_archive(103);
    let archive = Archive::new(store, Some(tags));
    for (class, name) in [
        (ObjClass::Galaxy, "GALAXY"),
        (ObjClass::Star, "STAR"),
        (ObjClass::Quasar, "QSO"),
    ] {
        let out = archive
            .run(&format!(
                "SELECT COUNT(*) FROM photoobj WHERE class = '{name}'"
            ))
            .unwrap();
        let got = out.rows[0][0].as_num().unwrap() as usize;
        let want = objs.iter().filter(|o| o.class == class).count();
        assert_eq!(got, want, "{name}");
    }
}

#[test]
fn tag_and_full_routes_return_identical_results() {
    let (store, tags, _) = build_archive(104);
    let with_tags = Archive::new(store.clone(), Some(tags));
    let full_only = Archive::new(store, None);
    for sql in [
        "SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND gr > 0.3",
        "SELECT objid, ra, dec FROM photoobj WHERE BAND('GALACTIC', 40, 90) AND r < 22",
        "SELECT COUNT(*), AVG(ug) FROM photoobj WHERE CIRCLE(185, 15, 3)",
    ] {
        let a = with_tags.run(sql).unwrap();
        let b = full_only.run(sql).unwrap();
        assert_eq!(a.rows.len(), b.rows.len(), "{sql}");
        let key = |rows: &Vec<sdss::query::Row>| -> Vec<String> {
            let mut v: Vec<String> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|c| format!("{c:.32}"))
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&a.rows), key(&b.rows), "{sql}");
    }
}

#[test]
fn proximity_join_quasar_query() {
    // The paper's "quasars brighter than r=22, which have a faint blue
    // galaxy within 5 arcsec" — hash machine + brute force agreement.
    let model = SkyModel {
        n_galaxies: 2500,
        n_stars: 500,
        n_quasars: 400,
        cluster_fraction: 0.7,
        ..SkyModel::small(105)
    };
    let tags: Vec<TagObject> = model
        .generate()
        .unwrap()
        .iter()
        .map(TagObject::from_photo)
        .collect();
    let radius = 5.0 / 3600.0;
    let pred: sdss::dataflow::PairPredicate = Arc::new(|a, b| {
        let (q, g) = if a.class == ObjClass::Quasar {
            (a, b)
        } else {
            (b, a)
        };
        q.class == ObjClass::Quasar
            && q.mag(2) < 22.0
            && g.class == ObjClass::Galaxy
            && g.mag(2) > q.mag(2)
            && g.color_gr() < 0.6
    });
    let machine = sdss::dataflow::HashMachine {
        bucket_level: 10,
        margin_deg: radius,
        n_workers: 4,
    };
    let (pairs, _) = machine.find_pairs(&tags, radius, &pred).unwrap();
    let brute = sdss::dataflow::brute_force_pairs(&tags, radius, &pred);
    assert_eq!(pairs, brute);
}
